//===- neural/Ggnn.cpp ----------------------------------------------------==//

#include "neural/Ggnn.h"

#include <algorithm>
#include <cmath>

using namespace namer;
using namespace namer::neural;

GgnnModel::GgnnModel(Config C) : Cfg(C) {
  Rng G(Cfg.Seed);
  float Scale = 1.0f / std::sqrt(static_cast<float>(Cfg.Hidden));
  auto Param = [&](size_t R, size_t Cl) {
    Tensor P(R, Cl, /*RequiresGrad=*/true);
    P.initUniform(G, Scale);
    Parameters.push_back(P);
    return P;
  };
  Embedding = Param(Cfg.VocabBuckets, Cfg.Hidden);
  for (size_t E = 0; E != NumEdgeTypes; ++E)
    MessageWeights.push_back(Param(Cfg.Hidden, Cfg.Hidden));
  Wz = Param(Cfg.Hidden, Cfg.Hidden);
  Uz = Param(Cfg.Hidden, Cfg.Hidden);
  Bz = Param(1, Cfg.Hidden);
  Wr = Param(Cfg.Hidden, Cfg.Hidden);
  Ur = Param(Cfg.Hidden, Cfg.Hidden);
  Br = Param(1, Cfg.Hidden);
  Wh = Param(Cfg.Hidden, Cfg.Hidden);
  Uh = Param(Cfg.Hidden, Cfg.Hidden);
  Bh = Param(1, Cfg.Hidden);
}

Tensor GgnnModel::forward(Tape &T, const GraphSample &Sample) {
  Tensor H = embed(T, Embedding, Sample.NodeLabels);
  size_t N = Sample.numNodes();
  for (size_t Step = 0; Step != Cfg.Steps; ++Step) {
    // Typed messages: M = sum_t aggregate(H W_t, edges_t).
    Tensor M;
    for (size_t E = 0; E != NumEdgeTypes; ++E) {
      if (Sample.Edges[E].empty())
        continue;
      Tensor Transformed = matmul(T, H, MessageWeights[E]);
      Tensor Part = aggregate(T, Transformed, Sample.Edges[E], N);
      M = M.valid() ? add(T, M, Part) : Part;
    }
    if (!M.valid())
      break;
    // GRU update.
    Tensor Z = sigmoid(
        T, add(T, add(T, matmul(T, M, Wz), matmul(T, H, Uz)), Bz));
    Tensor R = sigmoid(
        T, add(T, add(T, matmul(T, M, Wr), matmul(T, H, Ur)), Br));
    Tensor HC = tanhOp(
        T, add(T, add(T, matmul(T, M, Wh), matmul(T, mul(T, R, H), Uh)),
               Bh));
    H = add(T, mul(T, oneMinus(T, Z), H), mul(T, Z, HC));
  }
  return H;
}

Tensor GgnnModel::repairLogits(Tape &T, const GraphSample &Sample,
                               Tensor H) {
  Tensor Hole = gatherRows(T, H, {Sample.HoleNode});          // [1 x D]
  Tensor Cands = gatherRows(T, H, Sample.CandidateNodes);     // [K x D]
  return matmulT(T, Hole, Cands);                             // [1 x K]
}

float GgnnModel::train(const std::vector<GraphSample> &Samples) {
  Adam Optimizer(Parameters, Adam::Config{Cfg.LearningRate, 0.9f, 0.999f,
                                          1e-8f});
  float LastLoss = 0;
  for (size_t Epoch = 0; Epoch != Cfg.Epochs; ++Epoch) {
    float Total = 0;
    size_t Count = 0;
    for (const GraphSample &Sample : Samples) {
      if (Sample.CandidateNodes.size() < 2)
        continue;
      Tape T;
      Tensor H = forward(T, Sample);
      Tensor Logits = repairLogits(T, Sample, H);
      float Loss =
          softmaxCrossEntropy(T, Logits, {Sample.CorrectCandidate});
      T.backward();
      Optimizer.step();
      Total += Loss;
      ++Count;
    }
    LastLoss = Count ? Total / static_cast<float>(Count) : 0.0f;
  }
  return LastLoss;
}

std::vector<float> GgnnModel::predictRepair(const GraphSample &Sample) {
  Tape T;
  Tensor H = forward(T, Sample);
  Tensor Logits = repairLogits(T, Sample, H);
  Tensor Probs = softmax(T, Logits);
  T.clear();
  std::vector<float> Out(Probs.cols());
  for (size_t I = 0; I != Probs.cols(); ++I)
    Out[I] = Probs.at(0, I);
  return Out;
}

double GgnnModel::repairAccuracy(const std::vector<GraphSample> &Samples) {
  size_t Correct = 0, Total = 0;
  for (const GraphSample &Sample : Samples) {
    if (Sample.CandidateNodes.size() < 2)
      continue;
    std::vector<float> Probs = predictRepair(Sample);
    size_t Arg = static_cast<size_t>(
        std::max_element(Probs.begin(), Probs.end()) - Probs.begin());
    Correct += Arg == Sample.CorrectCandidate;
    ++Total;
  }
  return Total ? static_cast<double>(Correct) / static_cast<double>(Total)
               : 0.0;
}
