//===- neural/Great.cpp ---------------------------------------------------==//

#include "neural/Great.h"

#include <algorithm>
#include <cmath>

using namespace namer;
using namespace namer::neural;

GreatModel::GreatModel(Config C) : Cfg(C) {
  Rng G(Cfg.Seed);
  float Scale = 1.0f / std::sqrt(static_cast<float>(Cfg.Hidden));
  auto Param = [&](size_t R, size_t Cl, float S) {
    Tensor P(R, Cl, /*RequiresGrad=*/true);
    P.initUniform(G, S);
    Parameters.push_back(P);
    return P;
  };
  Embedding = Param(Cfg.VocabBuckets, Cfg.Hidden, Scale);
  for (size_t L = 0; L != Cfg.Layers; ++L) {
    Layer Lay;
    Lay.Wq = Param(Cfg.Hidden, Cfg.Hidden, Scale);
    Lay.Wk = Param(Cfg.Hidden, Cfg.Hidden, Scale);
    Lay.Wv = Param(Cfg.Hidden, Cfg.Hidden, Scale);
    Lay.Wo = Param(Cfg.Hidden, Cfg.Hidden, Scale);
    Lay.F1 = Param(Cfg.Hidden, Cfg.Hidden * 2, Scale);
    Lay.F2 = Param(Cfg.Hidden * 2, Cfg.Hidden, Scale);
    for (size_t E = 0; E != NumEdgeTypes; ++E)
      Lay.EdgeBias.push_back(Param(1, 1, 0.1f));
    Layers.push_back(std::move(Lay));
  }
  NoBugQuery = Param(1, Cfg.Hidden, Scale);
  NoBugBias = Param(1, 1, 0.1f);
  NoBugPool = Param(1, Cfg.Hidden, Scale);
  LocProj = Param(Cfg.Hidden, Cfg.Hidden, Scale);
}

Tensor GreatModel::forward(Tape &T, const GraphSample &Sample) {
  Tensor H = embed(T, Embedding, Sample.NodeLabels);
  float InvSqrtD = 1.0f / std::sqrt(static_cast<float>(Cfg.Hidden));
  for (Layer &Lay : Layers) {
    Tensor Q = matmul(T, H, Lay.Wq);
    Tensor K = matmul(T, H, Lay.Wk);
    Tensor V = matmul(T, H, Lay.Wv);
    Tensor Logits = scale(T, matmulT(T, Q, K), InvSqrtD); // [N x N]
    // Global relational attention: bias logits along typed edges.
    for (size_t E = 0; E != NumEdgeTypes; ++E)
      if (!Sample.Edges[E].empty())
        Logits = addEdgeBias(T, Logits, Sample.Edges[E], Lay.EdgeBias[E]);
    Tensor Attn = softmax(T, Logits);
    Tensor Mixed = matmul(T, matmul(T, Attn, V), Lay.Wo);
    H = add(T, H, Mixed); // residual
    Tensor FF = matmul(T, relu(T, matmul(T, H, Lay.F1)), Lay.F2);
    H = add(T, H, FF); // residual
  }
  return H;
}

Tensor GreatModel::locLogits(Tape &T, const GraphSample &Sample, Tensor H) {
  // Pointer over [no-bug] + use sites: score_i = (hole-agnostic) projection
  // of each use-site state against a learned no-bug anchor.
  Tensor Sites = gatherRows(T, H, Sample.UseSites);    // [U x D]
  Tensor Projected = matmul(T, Sites, LocProj);        // [U x D]
  // Each site scored against the no-bug query: how "suspicious" it is.
  Tensor Scores = matmulT(T, NoBugQuery, Projected);   // [1 x U]
  // The no-bug logit is a bias plus a pooled-graph term, so it can react
  // to how suspicious the whole function looks.
  float InvU = 1.0f / static_cast<float>(Sample.UseSites.size());
  Tensor Pooled = scale(T, matmul(T, Scores, Projected), InvU); // [1 x D]
  Tensor PoolScore = matmulT(T, NoBugPool, Pooled);             // [1 x 1]
  Tensor NoBug = add(T, NoBugBias, PoolScore);                  // [1 x 1]
  // Concatenate [NoBug | Scores] manually.
  Tensor Out(1, Scores.cols() + 1);
  Out.at(0, 0) = NoBug.at(0, 0);
  for (size_t I = 0; I != Scores.cols(); ++I)
    Out.at(0, I + 1) = Scores.at(0, I);
  T.record([NoBug, Scores, Out]() mutable {
    NoBug.data().gradAt(0, 0) += Out.data().gradAt(0, 0);
    for (size_t I = 0; I != Scores.cols(); ++I)
      Scores.data().gradAt(0, I) += Out.data().gradAt(0, I + 1);
  });
  return Out;
}

Tensor GreatModel::repairLogits(Tape &T, const GraphSample &Sample,
                                Tensor H) {
  Tensor Hole = gatherRows(T, H, {Sample.HoleNode});
  Tensor Cands = gatherRows(T, H, Sample.CandidateNodes);
  return matmulT(T, Hole, Cands);
}

float GreatModel::train(const std::vector<GraphSample> &Samples) {
  Adam Optimizer(Parameters, Adam::Config{Cfg.LearningRate, 0.9f, 0.999f,
                                          1e-8f});
  float LastLoss = 0;
  for (size_t Epoch = 0; Epoch != Cfg.Epochs; ++Epoch) {
    float Total = 0;
    size_t Count = 0;
    for (const GraphSample &Sample : Samples) {
      if (Sample.CandidateNodes.size() < 2 || Sample.UseSites.empty())
        continue;
      Tape T;
      Tensor H = forward(T, Sample);
      float Loss = 0;
      // Localization target: slot 0 = no bug, else 1 + hole index.
      uint32_t LocTarget = Sample.IsBuggy ? Sample.HoleUseIndex + 1 : 0;
      Loss += softmaxCrossEntropy(T, locLogits(T, Sample, H), {LocTarget});
      // Repair target only supervises buggy samples.
      if (Sample.IsBuggy)
        Loss += softmaxCrossEntropy(T, repairLogits(T, Sample, H),
                                    {Sample.CorrectCandidate});
      T.backward();
      Optimizer.step();
      Total += Loss;
      ++Count;
    }
    LastLoss = Count ? Total / static_cast<float>(Count) : 0.0f;
  }
  return LastLoss;
}

std::vector<float>
GreatModel::predictLocalization(const GraphSample &Sample) {
  Tape T;
  Tensor H = forward(T, Sample);
  Tensor Probs = softmax(T, locLogits(T, Sample, H));
  T.clear();
  std::vector<float> Out(Probs.cols());
  for (size_t I = 0; I != Probs.cols(); ++I)
    Out[I] = Probs.at(0, I);
  return Out;
}

std::vector<float> GreatModel::predictRepair(const GraphSample &Sample) {
  Tape T;
  Tensor H = forward(T, Sample);
  Tensor Probs = softmax(T, repairLogits(T, Sample, H));
  T.clear();
  std::vector<float> Out(Probs.cols());
  for (size_t I = 0; I != Probs.cols(); ++I)
    Out[I] = Probs.at(0, I);
  return Out;
}

GreatModel::Accuracy
GreatModel::evaluate(const std::vector<GraphSample> &Samples) {
  size_t ClsCorrect = 0, ClsTotal = 0;
  size_t LocCorrect = 0, RepCorrect = 0, BugTotal = 0;
  for (const GraphSample &Sample : Samples) {
    if (Sample.CandidateNodes.size() < 2 || Sample.UseSites.empty())
      continue;
    std::vector<float> Loc = predictLocalization(Sample);
    size_t LocArg = static_cast<size_t>(
        std::max_element(Loc.begin(), Loc.end()) - Loc.begin());
    bool PredictedBuggy = LocArg != 0;
    ClsCorrect += PredictedBuggy == Sample.IsBuggy;
    ++ClsTotal;
    if (!Sample.IsBuggy)
      continue;
    ++BugTotal;
    LocCorrect += LocArg == Sample.HoleUseIndex + 1;
    std::vector<float> Rep = predictRepair(Sample);
    size_t RepArg = static_cast<size_t>(
        std::max_element(Rep.begin(), Rep.end()) - Rep.begin());
    RepCorrect += RepArg == Sample.CorrectCandidate;
  }
  Accuracy A;
  A.Classification =
      ClsTotal ? static_cast<double>(ClsCorrect) / ClsTotal : 0.0;
  A.Localization = BugTotal ? static_cast<double>(LocCorrect) / BugTotal : 0.0;
  A.Repair = BugTotal ? static_cast<double>(RepCorrect) / BugTotal : 0.0;
  return A;
}
