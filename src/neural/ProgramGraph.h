//===- neural/ProgramGraph.h - Program graphs for GGNN/Great ----*- C++ -*-==//
///
/// \file
/// The program-graph encoding of Allamanis et al. (GGNN) and Hellendoorn
/// et al. (Great): AST nodes plus token-level and data-flow edges
/// (Child, NextToken, LastUse, LastWrite, ComputedFrom), with a VarMisuse
/// task annotation: a masked "hole" occurrence of a variable and the set
/// of in-scope candidate names.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_NEURAL_PROGRAMGRAPH_H
#define NAMER_NEURAL_PROGRAMGRAPH_H

#include "ast/Tree.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace namer {
namespace neural {

enum class EdgeType : uint8_t {
  Child,
  Parent,
  NextToken,
  PrevToken,
  LastUse,
  LastWrite,
  ComputedFrom,
};
inline constexpr size_t NumEdgeTypes = 7;

using Edge = std::pair<uint32_t, uint32_t>;

/// One VarMisuse sample: the graph of a function with a masked use site.
struct GraphSample {
  /// Vocabulary-bucket label per node; the hole node is bucket 0.
  std::vector<uint32_t> NodeLabels;
  std::array<std::vector<Edge>, NumEdgeTypes> Edges;
  /// The masked use-site node.
  uint32_t HoleNode = 0;
  /// One representative node per candidate name.
  std::vector<uint32_t> CandidateNodes;
  std::vector<std::string> CandidateNames;
  /// Index of the correct name in CandidateNames.
  uint32_t CorrectCandidate = 0;
  /// All use-site nodes (for Great's localization head).
  std::vector<uint32_t> UseSites;
  /// Position of HoleNode in UseSites.
  uint32_t HoleUseIndex = 0;
  /// Whether the hole currently holds a wrong name (synthetic-bug label).
  bool IsBuggy = false;

  // Provenance for the real-issue evaluation.
  std::string File;
  uint32_t Line = 0;
  std::string CurrentName;

  size_t numNodes() const { return NodeLabels.size(); }
};

/// Hashes a token into one of \p Buckets - 1 vocabulary buckets (bucket 0
/// is reserved for the hole mask).
uint32_t vocabBucket(std::string_view Token, size_t Buckets);

/// Builds a VarMisuse sample from the function subtree rooted at \p FnDef
/// of \p Module. \p UseIdent is the Ident node (a NameLoad child) to mask
/// as the hole; \p CorrectName is the name that *should* be there. Returns
/// false if the function has fewer than two candidate names.
bool buildGraphSample(const Tree &Module, NodeId FnDef, NodeId UseIdent,
                      const std::string &CorrectName, size_t VocabBuckets,
                      GraphSample &Out);

/// Collects the NameLoad Ident occurrences inside \p FnDef that refer to
/// local variables (the model's use sites).
std::vector<NodeId> collectUseSites(const Tree &Module, NodeId FnDef);

} // namespace neural
} // namespace namer

#endif // NAMER_NEURAL_PROGRAMGRAPH_H
