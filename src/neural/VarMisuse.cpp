//===- neural/VarMisuse.cpp -----------------------------------------------==//

#include "neural/VarMisuse.h"

#include "frontend/java/JavaParser.h"
#include "frontend/python/PythonParser.h"

#include <algorithm>

using namespace namer;
using namespace namer::neural;

namespace {

/// Parses one corpus file into a module tree.
Tree parseFile(const corpus::SourceFile &File, corpus::Language Lang,
               AstContext &Ctx) {
  if (Lang == corpus::Language::Python)
    return std::move(python::parsePython(File.Text, Ctx).Module);
  return std::move(java::parseJava(File.Text, Ctx).Module);
}

std::vector<NodeId> functionDefs(const Tree &Module) {
  std::vector<NodeId> Out;
  for (NodeId N = 0; N != Module.size(); ++N)
    if (Module.node(N).Kind == NodeKind::FunctionDef)
      Out.push_back(N);
  return Out;
}

size_t subtreeSize(const Tree &M, NodeId N) {
  size_t Count = 1;
  for (NodeId C : M.node(N).Children)
    Count += subtreeSize(M, C);
  return Count;
}

} // namespace

std::vector<GraphSample>
neural::buildSyntheticDataset(const corpus::Corpus &C,
                              const VarMisuseConfig &Config,
                              size_t MaxSamples) {
  std::vector<GraphSample> Samples;
  Rng G(Config.Seed);
  for (const corpus::Repository &Repo : C.Repos) {
    for (const corpus::SourceFile &File : Repo.Files) {
      if (Samples.size() >= MaxSamples)
        return Samples;
      AstContext Ctx;
      Tree Module = parseFile(File, C.Lang, Ctx);
      for (NodeId Fn : functionDefs(Module)) {
        if (Samples.size() >= MaxSamples)
          break;
        if (subtreeSize(Module, Fn) > Config.MaxNodes)
          continue;
        std::vector<NodeId> Uses = collectUseSites(Module, Fn);
        if (Uses.empty())
          continue;
        NodeId Use = Uses[G.bounded(Uses.size())];
        std::string Original(Module.valueText(Use));

        GraphSample Sample;
        bool InjectBug = G.chance(Config.BugRate);
        if (InjectBug) {
          // Replace the use with a different in-scope name, then build the
          // graph from the corrupted tree and restore.
          GraphSample Probe;
          if (!buildGraphSample(Module, Fn, Use, Original,
                                Config.VocabBuckets, Probe))
            continue;
          std::vector<std::string> Others;
          for (const std::string &Name : Probe.CandidateNames)
            if (Name != Original)
              Others.push_back(Name);
          if (Others.empty())
            continue;
          const std::string &Wrong = Others[G.bounded(Others.size())];
          Symbol Saved = Module.node(Use).Value;
          Module.setValue(Use, Ctx.intern(Wrong));
          bool Ok = buildGraphSample(Module, Fn, Use, Original,
                                     Config.VocabBuckets, Sample);
          Module.setValue(Use, Saved);
          if (!Ok)
            continue;
          Sample.IsBuggy = true;
        } else {
          if (!buildGraphSample(Module, Fn, Use, Original,
                                Config.VocabBuckets, Sample))
            continue;
          Sample.IsBuggy = false;
        }
        Sample.File = File.Path;
        Samples.push_back(std::move(Sample));
      }
    }
  }
  return Samples;
}

std::vector<GraphSample>
neural::buildRealUseSites(const corpus::Corpus &C,
                          const VarMisuseConfig &Config, size_t MaxSamples) {
  std::vector<GraphSample> Samples;
  for (const corpus::Repository &Repo : C.Repos) {
    for (const corpus::SourceFile &File : Repo.Files) {
      if (Samples.size() >= MaxSamples)
        return Samples;
      AstContext Ctx;
      Tree Module = parseFile(File, C.Lang, Ctx);
      for (NodeId Fn : functionDefs(Module)) {
        if (Samples.size() >= MaxSamples)
          break;
        if (subtreeSize(Module, Fn) > Config.MaxNodes)
          continue;
        for (NodeId Use : collectUseSites(Module, Fn)) {
          if (Samples.size() >= MaxSamples)
            break;
          std::string Current(Module.valueText(Use));
          GraphSample Sample;
          if (!buildGraphSample(Module, Fn, Use, Current,
                                Config.VocabBuckets, Sample))
            continue;
          Sample.File = File.Path;
          Samples.push_back(std::move(Sample));
        }
      }
    }
  }
  return Samples;
}
