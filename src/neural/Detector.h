//===- neural/Detector.h - Real-issue detection with neural models -*- C++-*-=//
///
/// \file
/// The Section 5.6 evaluation step: run a trained misuse model over the
/// unmodified corpus and report use sites where the model prefers a
/// different name than the one present, ranked by confidence margin. The
/// paper tunes the confidence level so the networks report about 5x fewer
/// issues than Namer; MaxReports implements that knob.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_NEURAL_DETECTOR_H
#define NAMER_NEURAL_DETECTOR_H

#include "neural/ProgramGraph.h"

#include <functional>
#include <string>
#include <vector>

namespace namer {
namespace neural {

struct NeuralReport {
  std::string File;
  uint32_t Line = 0;
  std::string Original;
  std::string Suggested;
  float Confidence = 0;
};

/// Scans \p RealSites with \p PredictRepair (candidate probabilities) and
/// returns up to \p MaxReports reports, most confident first. A site is
/// reported when the model's argmax differs from the current name; the
/// confidence is the probability margin.
std::vector<NeuralReport> detectRealIssues(
    const std::vector<GraphSample> &RealSites,
    const std::function<std::vector<float>(const GraphSample &)> &PredictRepair,
    size_t MaxReports);

} // namespace neural
} // namespace namer

#endif // NAMER_NEURAL_DETECTOR_H
