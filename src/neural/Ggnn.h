//===- neural/Ggnn.h - Gated graph neural network baseline ------*- C++ -*-==//
///
/// \file
/// Re-implementation of the GGNN variable-misuse model of Allamanis et al.
/// (ICLR'18), the first deep baseline of Section 5.6: node embeddings are
/// refined by T rounds of typed message passing with a GRU update; a
/// masked use-site ("hole") is repaired by scoring every in-scope
/// candidate against the hole state.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_NEURAL_GGNN_H
#define NAMER_NEURAL_GGNN_H

#include "neural/ProgramGraph.h"
#include "neural/Tensor.h"

#include <vector>

namespace namer {
namespace neural {

class GgnnModel {
public:
  struct Config {
    size_t VocabBuckets = 128;
    size_t Hidden = 32;
    size_t Steps = 4;
    size_t Epochs = 3;
    float LearningRate = 5e-3f;
    uint64_t Seed = 23;
  };

  explicit GgnnModel(Config C);

  /// Trains on synthetic samples; returns the final-epoch mean loss.
  float train(const std::vector<GraphSample> &Samples);

  /// Softmax probabilities over the sample's candidates.
  std::vector<float> predictRepair(const GraphSample &Sample);

  /// Fraction of samples whose argmax candidate is the correct one.
  double repairAccuracy(const std::vector<GraphSample> &Samples);

private:
  Tensor forward(Tape &T, const GraphSample &Sample);
  Tensor repairLogits(Tape &T, const GraphSample &Sample, Tensor H);

  Config Cfg;
  Tensor Embedding;                    // [Vocab x D]
  std::vector<Tensor> MessageWeights;  // per edge type [D x D]
  // GRU parameters.
  Tensor Wz, Uz, Bz, Wr, Ur, Br, Wh, Uh, Bh;
  std::vector<Tensor> Parameters;
};

} // namespace neural
} // namespace namer

#endif // NAMER_NEURAL_GGNN_H
