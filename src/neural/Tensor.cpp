//===- neural/Tensor.cpp --------------------------------------------------==//

#include "neural/Tensor.h"

#include <cmath>

using namespace namer;
using namespace namer::neural;

void Tensor::initUniform(Rng &G, float Scale) {
  for (float &V : Data->Value)
    V = static_cast<float>((G.uniform() * 2.0 - 1.0) * Scale);
}

Tensor neural::matmul(Tape &T, Tensor A, Tensor B) {
  assert(A.cols() == B.rows() && "matmul shape mismatch");
  Tensor C(A.rows(), B.cols());
  for (size_t I = 0; I != A.rows(); ++I)
    for (size_t K = 0; K != A.cols(); ++K) {
      float V = A.at(I, K);
      if (V == 0.0f)
        continue;
      for (size_t J = 0; J != B.cols(); ++J)
        C.at(I, J) += V * B.at(K, J);
    }
  T.record([A, B, C]() mutable {
    // dA = dC x B^T; dB = A^T x dC.
    auto &DC = C.data().Grad;
    for (size_t I = 0; I != A.rows(); ++I)
      for (size_t J = 0; J != B.cols(); ++J) {
        float G = DC[I * B.cols() + J];
        if (G == 0.0f)
          continue;
        for (size_t K = 0; K != A.cols(); ++K) {
          A.data().gradAt(I, K) += G * B.at(K, J);
          B.data().gradAt(K, J) += G * A.at(I, K);
        }
      }
  });
  return C;
}

Tensor neural::add(Tape &T, Tensor A, Tensor B) {
  bool Broadcast = B.rows() == 1 && A.rows() != 1;
  assert(A.cols() == B.cols() && (Broadcast || A.rows() == B.rows()) &&
         "add shape mismatch");
  Tensor C(A.rows(), A.cols());
  for (size_t I = 0; I != A.rows(); ++I)
    for (size_t J = 0; J != A.cols(); ++J)
      C.at(I, J) = A.at(I, J) + B.at(Broadcast ? 0 : I, J);
  T.record([A, B, C, Broadcast]() mutable {
    for (size_t I = 0; I != A.rows(); ++I)
      for (size_t J = 0; J != A.cols(); ++J) {
        float G = C.data().gradAt(I, J);
        A.data().gradAt(I, J) += G;
        B.data().gradAt(Broadcast ? 0 : I, J) += G;
      }
  });
  return C;
}

Tensor neural::sub(Tape &T, Tensor A, Tensor B) {
  assert(A.rows() == B.rows() && A.cols() == B.cols() &&
         "sub shape mismatch");
  Tensor C(A.rows(), A.cols());
  for (size_t I = 0; I != A.data().size(); ++I)
    C.data().Value[I] = A.data().Value[I] - B.data().Value[I];
  T.record([A, B, C]() mutable {
    for (size_t I = 0; I != A.data().size(); ++I) {
      A.data().Grad[I] += C.data().Grad[I];
      B.data().Grad[I] -= C.data().Grad[I];
    }
  });
  return C;
}

Tensor neural::mul(Tape &T, Tensor A, Tensor B) {
  assert(A.rows() == B.rows() && A.cols() == B.cols() &&
         "mul shape mismatch");
  Tensor C(A.rows(), A.cols());
  for (size_t I = 0; I != A.data().size(); ++I)
    C.data().Value[I] = A.data().Value[I] * B.data().Value[I];
  T.record([A, B, C]() mutable {
    for (size_t I = 0; I != A.data().size(); ++I) {
      A.data().Grad[I] += C.data().Grad[I] * B.data().Value[I];
      B.data().Grad[I] += C.data().Grad[I] * A.data().Value[I];
    }
  });
  return C;
}

Tensor neural::scale(Tape &T, Tensor A, float Scalar) {
  Tensor C(A.rows(), A.cols());
  for (size_t I = 0; I != A.data().size(); ++I)
    C.data().Value[I] = A.data().Value[I] * Scalar;
  T.record([A, C, Scalar]() mutable {
    for (size_t I = 0; I != A.data().size(); ++I)
      A.data().Grad[I] += C.data().Grad[I] * Scalar;
  });
  return C;
}

Tensor neural::relu(Tape &T, Tensor A) {
  Tensor C(A.rows(), A.cols());
  for (size_t I = 0; I != A.data().size(); ++I)
    C.data().Value[I] = A.data().Value[I] > 0 ? A.data().Value[I] : 0.0f;
  T.record([A, C]() mutable {
    for (size_t I = 0; I != A.data().size(); ++I)
      if (A.data().Value[I] > 0)
        A.data().Grad[I] += C.data().Grad[I];
  });
  return C;
}

Tensor neural::tanhOp(Tape &T, Tensor A) {
  Tensor C(A.rows(), A.cols());
  for (size_t I = 0; I != A.data().size(); ++I)
    C.data().Value[I] = std::tanh(A.data().Value[I]);
  T.record([A, C]() mutable {
    for (size_t I = 0; I != A.data().size(); ++I) {
      float Y = C.data().Value[I];
      A.data().Grad[I] += C.data().Grad[I] * (1.0f - Y * Y);
    }
  });
  return C;
}

Tensor neural::sigmoid(Tape &T, Tensor A) {
  Tensor C(A.rows(), A.cols());
  for (size_t I = 0; I != A.data().size(); ++I)
    C.data().Value[I] = 1.0f / (1.0f + std::exp(-A.data().Value[I]));
  T.record([A, C]() mutable {
    for (size_t I = 0; I != A.data().size(); ++I) {
      float Y = C.data().Value[I];
      A.data().Grad[I] += C.data().Grad[I] * Y * (1.0f - Y);
    }
  });
  return C;
}

Tensor neural::oneMinus(Tape &T, Tensor A) {
  Tensor C(A.rows(), A.cols());
  for (size_t I = 0; I != A.data().size(); ++I)
    C.data().Value[I] = 1.0f - A.data().Value[I];
  T.record([A, C]() mutable {
    for (size_t I = 0; I != A.data().size(); ++I)
      A.data().Grad[I] -= C.data().Grad[I];
  });
  return C;
}

Tensor neural::softmax(Tape &T, Tensor A) {
  Tensor C(A.rows(), A.cols());
  for (size_t I = 0; I != A.rows(); ++I) {
    float Max = A.at(I, 0);
    for (size_t J = 1; J != A.cols(); ++J)
      Max = std::max(Max, A.at(I, J));
    float Sum = 0;
    for (size_t J = 0; J != A.cols(); ++J) {
      C.at(I, J) = std::exp(A.at(I, J) - Max);
      Sum += C.at(I, J);
    }
    for (size_t J = 0; J != A.cols(); ++J)
      C.at(I, J) /= Sum;
  }
  T.record([A, C]() mutable {
    // dA_j = y_j * (dC_j - sum_k dC_k y_k) per row.
    for (size_t I = 0; I != A.rows(); ++I) {
      float Dot = 0;
      for (size_t K = 0; K != A.cols(); ++K)
        Dot += C.data().gradAt(I, K) * C.at(I, K);
      for (size_t J = 0; J != A.cols(); ++J)
        A.data().gradAt(I, J) +=
            C.at(I, J) * (C.data().gradAt(I, J) - Dot);
    }
  });
  return C;
}

Tensor neural::embed(Tape &T, Tensor Table,
                     const std::vector<uint32_t> &Indices) {
  Tensor C(Indices.size(), Table.cols());
  for (size_t I = 0; I != Indices.size(); ++I) {
    assert(Indices[I] < Table.rows() && "embedding index out of range");
    for (size_t J = 0; J != Table.cols(); ++J)
      C.at(I, J) = Table.at(Indices[I], J);
  }
  T.record([Table, C, Indices]() mutable {
    for (size_t I = 0; I != Indices.size(); ++I)
      for (size_t J = 0; J != Table.cols(); ++J)
        Table.data().gradAt(Indices[I], J) += C.data().gradAt(I, J);
  });
  return C;
}

Tensor neural::gatherRows(Tape &T, Tensor A,
                          const std::vector<uint32_t> &Indices) {
  return embed(T, A, Indices);
}

float neural::softmaxCrossEntropy(Tape &T, Tensor Logits,
                                  const std::vector<uint32_t> &Targets) {
  assert(Targets.size() == Logits.rows() && "target count mismatch");
  Tensor Probs = softmax(T, Logits);
  float Loss = 0;
  float Scale = 1.0f / static_cast<float>(Targets.size());
  for (size_t I = 0; I != Targets.size(); ++I) {
    float P = std::max(Probs.at(I, Targets[I]), 1e-9f);
    Loss -= std::log(P);
    // Seed the softmax gradient directly: d/dp of -log(p) averaged.
    Probs.data().gradAt(I, Targets[I]) = -Scale / P;
  }
  return Loss * Scale;
}

Tensor neural::matmulT(Tape &T, Tensor A, Tensor B) {
  assert(A.cols() == B.cols() && "matmulT shape mismatch");
  Tensor C(A.rows(), B.rows());
  for (size_t I = 0; I != A.rows(); ++I)
    for (size_t J = 0; J != B.rows(); ++J) {
      float Sum = 0;
      for (size_t K = 0; K != A.cols(); ++K)
        Sum += A.at(I, K) * B.at(J, K);
      C.at(I, J) = Sum;
    }
  T.record([A, B, C]() mutable {
    for (size_t I = 0; I != A.rows(); ++I)
      for (size_t J = 0; J != B.rows(); ++J) {
        float G = C.data().gradAt(I, J);
        if (G == 0.0f)
          continue;
        for (size_t K = 0; K != A.cols(); ++K) {
          A.data().gradAt(I, K) += G * B.at(J, K);
          B.data().gradAt(J, K) += G * A.at(I, K);
        }
      }
  });
  return C;
}

Tensor neural::transpose(Tape &T, Tensor A) {
  Tensor C(A.cols(), A.rows());
  for (size_t I = 0; I != A.rows(); ++I)
    for (size_t J = 0; J != A.cols(); ++J)
      C.at(J, I) = A.at(I, J);
  T.record([A, C]() mutable {
    for (size_t I = 0; I != A.rows(); ++I)
      for (size_t J = 0; J != A.cols(); ++J)
        A.data().gradAt(I, J) += C.data().gradAt(J, I);
  });
  return C;
}

Tensor neural::aggregate(
    Tape &T, Tensor In,
    const std::vector<std::pair<uint32_t, uint32_t>> &Edges,
    size_t NumNodes) {
  Tensor C(NumNodes, In.cols());
  for (const auto &[U, V] : Edges) {
    assert(U < In.rows() && V < NumNodes && "edge endpoint out of range");
    for (size_t J = 0; J != In.cols(); ++J)
      C.at(V, J) += In.at(U, J);
  }
  // Copy the edge list into the closure: the tape may outlive the caller's
  // edge vector.
  T.record([In, C, Edges]() mutable {
    for (const auto &[U, V] : Edges)
      for (size_t J = 0; J != In.cols(); ++J)
        In.data().gradAt(U, J) += C.data().gradAt(V, J);
  });
  return C;
}

Tensor neural::addEdgeBias(
    Tape &T, Tensor Logits,
    const std::vector<std::pair<uint32_t, uint32_t>> &Edges, Tensor Beta) {
  assert(Beta.rows() == 1 && Beta.cols() == 1 && "Beta must be 1x1");
  Tensor C(Logits.rows(), Logits.cols());
  C.data().Value = Logits.data().Value;
  float B = Beta.at(0, 0);
  for (const auto &[U, V] : Edges)
    if (U < C.rows() && V < C.cols())
      C.at(U, V) += B;
  T.record([Logits, C, Edges, Beta]() mutable {
    for (size_t I = 0; I != Logits.data().size(); ++I)
      Logits.data().Grad[I] += C.data().Grad[I];
    for (const auto &[U, V] : Edges)
      if (U < C.rows() && V < C.cols())
        Beta.data().gradAt(0, 0) += C.data().gradAt(U, V);
  });
  return C;
}

Adam::Adam(std::vector<Tensor> Parameters, Config C)
    : Parameters(std::move(Parameters)), Cfg(C) {
  for (Tensor &P : this->Parameters) {
    M.emplace_back(P.data().size(), 0.0f);
    V.emplace_back(P.data().size(), 0.0f);
  }
}

void Adam::step() {
  ++T;
  float Correction1 = 1.0f - std::pow(Cfg.Beta1, static_cast<float>(T));
  float Correction2 = 1.0f - std::pow(Cfg.Beta2, static_cast<float>(T));
  for (size_t P = 0; P != Parameters.size(); ++P) {
    TensorData &D = Parameters[P].data();
    for (size_t I = 0; I != D.size(); ++I) {
      float G = D.Grad[I];
      M[P][I] = Cfg.Beta1 * M[P][I] + (1 - Cfg.Beta1) * G;
      V[P][I] = Cfg.Beta2 * V[P][I] + (1 - Cfg.Beta2) * G * G;
      float MHat = M[P][I] / Correction1;
      float VHat = V[P][I] / Correction2;
      D.Value[I] -= Cfg.LearningRate * MHat /
                    (std::sqrt(VHat) + Cfg.Epsilon);
      D.Grad[I] = 0.0f;
    }
  }
}
