//===- neural/Great.h - Relation-aware transformer baseline -----*- C++ -*-==//
///
/// \file
/// Re-implementation of Great (Hellendoorn et al., ICLR'20), the second
/// deep baseline of Section 5.6: a transformer encoder whose attention
/// logits carry learned per-edge-type biases (global relational
/// attention), with the joint localize-and-repair head of Vasic et al.:
/// a localization pointer over [no-bug] + use sites, and a repair pointer
/// over candidates.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_NEURAL_GREAT_H
#define NAMER_NEURAL_GREAT_H

#include "neural/ProgramGraph.h"
#include "neural/Tensor.h"

#include <vector>

namespace namer {
namespace neural {

class GreatModel {
public:
  struct Config {
    size_t VocabBuckets = 128;
    size_t Hidden = 32;
    size_t Layers = 2;
    size_t Epochs = 10;
    float LearningRate = 1e-3f;
    uint64_t Seed = 29;
  };

  explicit GreatModel(Config C);

  /// Trains on synthetic samples with the joint localization+repair loss.
  float train(const std::vector<GraphSample> &Samples);

  /// Probabilities over [no-bug] followed by the sample's use sites.
  std::vector<float> predictLocalization(const GraphSample &Sample);
  /// Probabilities over the sample's candidates.
  std::vector<float> predictRepair(const GraphSample &Sample);

  struct Accuracy {
    double Classification = 0; ///< buggy vs not
    double Localization = 0;   ///< right use site (among buggy samples)
    double Repair = 0;         ///< right candidate (among buggy samples)
  };
  Accuracy evaluate(const std::vector<GraphSample> &Samples);

private:
  Tensor forward(Tape &T, const GraphSample &Sample);
  Tensor locLogits(Tape &T, const GraphSample &Sample, Tensor H);
  Tensor repairLogits(Tape &T, const GraphSample &Sample, Tensor H);

  Config Cfg;
  Tensor Embedding;
  struct Layer {
    Tensor Wq, Wk, Wv, Wo;
    Tensor F1, F2; // feed-forward
    std::vector<Tensor> EdgeBias; // 1x1 per edge type
  };
  std::vector<Layer> Layers;
  Tensor NoBugQuery; // [1 x D] suspicion query
  Tensor NoBugBias;  // [1 x 1] learned no-bug logit bias
  Tensor NoBugPool;  // [1 x D] pooled-graph no-bug query
  Tensor LocProj;    // [D x D]
  std::vector<Tensor> Parameters;
};

} // namespace neural
} // namespace namer

#endif // NAMER_NEURAL_GREAT_H
