//===- neural/Tensor.h - Tape-based autograd tensors ------------*- C++ -*-==//
///
/// \file
/// A compact reverse-mode automatic differentiation engine for the GGNN and
/// Great baselines (Section 5.6). Tensors are dense float matrices
/// [rows x cols]; a Tape records operations and replays their adjoints in
/// reverse. The original models run on TensorFlow/GPU; these baselines are
/// small enough (vocabulary-hashed embeddings, hidden size ~32) that a
/// straightforward CPU implementation trains in seconds, which is all the
/// distribution-mismatch experiment needs.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_NEURAL_TENSOR_H
#define NAMER_NEURAL_TENSOR_H

#include "support/Rng.h"

#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace namer {
namespace neural {

/// Shared tensor storage: value and gradient buffers plus shape.
struct TensorData {
  size_t Rows = 0, Cols = 0;
  std::vector<float> Value;
  std::vector<float> Grad;
  bool RequiresGrad = false;

  size_t size() const { return Rows * Cols; }
  float &at(size_t R, size_t C) { return Value[R * Cols + C]; }
  float at(size_t R, size_t C) const { return Value[R * Cols + C]; }
  float &gradAt(size_t R, size_t C) { return Grad[R * Cols + C]; }
};

/// Value-semantic handle to shared storage.
class Tensor {
public:
  Tensor() = default;
  Tensor(size_t Rows, size_t Cols, bool RequiresGrad = false) {
    Data = std::make_shared<TensorData>();
    Data->Rows = Rows;
    Data->Cols = Cols;
    Data->Value.assign(Rows * Cols, 0.0f);
    Data->Grad.assign(Rows * Cols, 0.0f);
    Data->RequiresGrad = RequiresGrad;
  }

  bool valid() const { return Data != nullptr; }
  size_t rows() const { return Data->Rows; }
  size_t cols() const { return Data->Cols; }
  TensorData &data() { return *Data; }
  const TensorData &data() const { return *Data; }

  float &at(size_t R, size_t C) { return Data->at(R, C); }
  float at(size_t R, size_t C) const {
    return static_cast<const TensorData &>(*Data).at(R, C);
  }

  /// Fills with uniform values in [-Scale, Scale].
  void initUniform(Rng &G, float Scale);

  void zeroGrad() { std::fill(Data->Grad.begin(), Data->Grad.end(), 0.0f); }

private:
  std::shared_ptr<TensorData> Data;
};

/// Records the computation so backward() can run adjoints in reverse.
class Tape {
public:
  /// Registers a backward closure for the op just executed.
  void record(std::function<void()> Backward) {
    Ops.push_back(std::move(Backward));
  }

  /// Runs all adjoints in reverse order, then clears the tape.
  void backward() {
    for (size_t I = Ops.size(); I != 0; --I)
      Ops[I - 1]();
    Ops.clear();
  }

  void clear() { Ops.clear(); }
  size_t size() const { return Ops.size(); }

private:
  std::vector<std::function<void()>> Ops;
};

// --- Differentiable operations ------------------------------------------------
// Every op allocates its output, computes forward, and records the adjoint.

/// C = A x B.
Tensor matmul(Tape &T, Tensor A, Tensor B);
/// C = A + B (same shape), or row-broadcast when B is [1 x cols].
Tensor add(Tape &T, Tensor A, Tensor B);
/// C = A - B (same shape).
Tensor sub(Tape &T, Tensor A, Tensor B);
/// C = A * B element-wise (same shape).
Tensor mul(Tape &T, Tensor A, Tensor B);
/// C = A * Scalar.
Tensor scale(Tape &T, Tensor A, float Scalar);
Tensor relu(Tape &T, Tensor A);
Tensor tanhOp(Tape &T, Tensor A);
Tensor sigmoid(Tape &T, Tensor A);
/// C = 1 - A element-wise.
Tensor oneMinus(Tape &T, Tensor A);
/// Row-wise softmax.
Tensor softmax(Tape &T, Tensor A);
/// Gathers rows: Out[i] = Table[Indices[i]]. Gradient scatters back.
Tensor embed(Tape &T, Tensor Table, const std::vector<uint32_t> &Indices);
/// Selects rows: Out[i] = A[Indices[i]].
Tensor gatherRows(Tape &T, Tensor A, const std::vector<uint32_t> &Indices);
/// Mean negative log-likelihood of Targets under row-wise softmax(Logits).
/// Returns the scalar loss value and seeds the gradient.
float softmaxCrossEntropy(Tape &T, Tensor Logits,
                          const std::vector<uint32_t> &Targets);
/// C = A x B^T.
Tensor matmulT(Tape &T, Tensor A, Tensor B);
/// C = A^T.
Tensor transpose(Tape &T, Tensor A);
/// Graph message aggregation: Out[v] += In[u] for every edge (u, v).
/// Out has \p NumNodes rows.
Tensor aggregate(Tape &T, Tensor In,
                 const std::vector<std::pair<uint32_t, uint32_t>> &Edges,
                 size_t NumNodes);
/// Relation-aware attention bias (Great): Logits[u][v] += Beta (a 1x1
/// parameter) for every edge (u, v). Returns the biased logits.
Tensor addEdgeBias(Tape &T, Tensor Logits,
                   const std::vector<std::pair<uint32_t, uint32_t>> &Edges,
                   Tensor Beta);

/// Adam optimizer over a fixed parameter list.
class Adam {
public:
  struct Config {
    float LearningRate = 1e-2f;
    float Beta1 = 0.9f;
    float Beta2 = 0.999f;
    float Epsilon = 1e-8f;
  };

  explicit Adam(std::vector<Tensor> Parameters)
      : Adam(std::move(Parameters), Config()) {}
  Adam(std::vector<Tensor> Parameters, Config C);

  /// Applies one update from accumulated gradients, then zeroes them.
  void step();

  const std::vector<Tensor> &parameters() const { return Parameters; }

private:
  std::vector<Tensor> Parameters;
  Config Cfg;
  std::vector<std::vector<float>> M, V;
  size_t T = 0;
};

} // namespace neural
} // namespace namer

#endif // NAMER_NEURAL_TENSOR_H
