//===- neural/Detector.cpp ------------------------------------------------==//

#include "neural/Detector.h"

#include <algorithm>

using namespace namer;
using namespace namer::neural;

std::vector<NeuralReport> neural::detectRealIssues(
    const std::vector<GraphSample> &RealSites,
    const std::function<std::vector<float>(const GraphSample &)> &PredictRepair,
    size_t MaxReports) {
  std::vector<NeuralReport> Reports;
  for (const GraphSample &Site : RealSites) {
    if (Site.CandidateNames.size() < 2)
      continue;
    std::vector<float> Probs = PredictRepair(Site);
    size_t Arg = static_cast<size_t>(
        std::max_element(Probs.begin(), Probs.end()) - Probs.begin());
    // Index of the currently present name.
    size_t Current = Probs.size();
    for (size_t I = 0; I != Site.CandidateNames.size(); ++I)
      if (Site.CandidateNames[I] == Site.CurrentName)
        Current = I;
    if (Current == Probs.size() || Arg == Current)
      continue;
    NeuralReport R;
    R.File = Site.File;
    R.Line = Site.Line;
    R.Original = Site.CurrentName;
    R.Suggested = Site.CandidateNames[Arg];
    R.Confidence = Probs[Arg] - Probs[Current];
    Reports.push_back(std::move(R));
  }
  std::sort(Reports.begin(), Reports.end(),
            [](const NeuralReport &A, const NeuralReport &B) {
              return A.Confidence > B.Confidence;
            });
  if (Reports.size() > MaxReports)
    Reports.resize(MaxReports);
  return Reports;
}
