//===- neural/ProgramGraph.cpp --------------------------------------------==//

#include "neural/ProgramGraph.h"

#include "support/Hashing.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace namer;
using namespace namer::neural;

uint32_t neural::vocabBucket(std::string_view Token, size_t Buckets) {
  // Bucket 0 is the hole mask.
  return 1 + static_cast<uint32_t>(hashString(Token) % (Buckets - 1));
}

namespace {

/// Collects local variable names bound in the function: parameters plus
/// NameStore targets.
void collectLocalNames(const Tree &M, NodeId N,
                       std::unordered_set<std::string> &Names) {
  const Node &Nd = M.node(N);
  if (Nd.Kind == NodeKind::Param || Nd.Kind == NodeKind::NameStore) {
    for (NodeId C : Nd.Children)
      if (M.node(C).Kind == NodeKind::Ident)
        Names.insert(std::string(M.valueText(C)));
  }
  for (NodeId C : Nd.Children) {
    // Nested functions own their names.
    if (M.node(C).Kind == NodeKind::FunctionDef)
      continue;
    collectLocalNames(M, C, Names);
  }
}

void collectSubtree(const Tree &M, NodeId N, std::vector<NodeId> &Order) {
  Order.push_back(N);
  for (NodeId C : M.node(N).Children)
    collectSubtree(M, C, Order);
}

} // namespace

std::vector<NodeId> neural::collectUseSites(const Tree &Module,
                                            NodeId FnDef) {
  std::unordered_set<std::string> Locals;
  collectLocalNames(Module, FnDef, Locals);
  std::vector<NodeId> Order;
  collectSubtree(Module, FnDef, Order);
  std::vector<NodeId> Uses;
  for (NodeId N : Order) {
    if (Module.node(N).Kind != NodeKind::NameLoad)
      continue;
    for (NodeId C : Module.node(N).Children) {
      if (Module.node(C).Kind != NodeKind::Ident)
        continue;
      std::string Name(Module.valueText(C));
      if (Locals.count(Name) && Name != "self" && Name != "this")
        Uses.push_back(C);
    }
  }
  return Uses;
}

bool neural::buildGraphSample(const Tree &Module, NodeId FnDef,
                              NodeId UseIdent,
                              const std::string &CorrectName,
                              size_t VocabBuckets, GraphSample &Out) {
  // Candidate names: local variables of the function.
  std::unordered_set<std::string> LocalSet;
  collectLocalNames(Module, FnDef, LocalSet);
  LocalSet.insert(CorrectName);
  if (LocalSet.size() < 2)
    return false;

  std::vector<NodeId> Order;
  collectSubtree(Module, FnDef, Order);
  std::unordered_map<NodeId, uint32_t> Dense;
  Dense.reserve(Order.size());
  for (uint32_t I = 0; I != Order.size(); ++I)
    Dense[Order[I]] = I;
  auto HoleIt = Dense.find(UseIdent);
  if (HoleIt == Dense.end())
    return false;

  Out = GraphSample();
  Out.HoleNode = HoleIt->second;
  Out.NodeLabels.resize(Order.size());
  Out.Line = Module.node(UseIdent).Line;
  Out.CurrentName = std::string(Module.valueText(UseIdent));

  // Labels; the hole is masked to bucket 0.
  for (uint32_t I = 0; I != Order.size(); ++I)
    Out.NodeLabels[I] =
        I == Out.HoleNode
            ? 0
            : vocabBucket(Module.valueText(Order[I]), VocabBuckets);

  // Child/Parent edges, token sequence, and per-name occurrence chains.
  std::vector<uint32_t> Tokens; // dense ids of leaves in order
  std::unordered_map<std::string, uint32_t> LastOccurrence; // name -> dense
  std::unordered_map<std::string, uint32_t> FirstOccurrence;
  for (uint32_t I = 0; I != Order.size(); ++I) {
    NodeId N = Order[I];
    const Node &Nd = Module.node(N);
    for (NodeId C : Nd.Children) {
      uint32_t CI = Dense[C];
      Out.Edges[static_cast<size_t>(EdgeType::Child)].push_back({I, CI});
      Out.Edges[static_cast<size_t>(EdgeType::Parent)].push_back({CI, I});
    }
    if (Nd.Children.empty())
      Tokens.push_back(I);
    // Variable occurrence chains (LastUse covers use->use; LastWrite is
    // approximated by linking store occurrences into the same chain).
    if (Nd.Kind == NodeKind::Ident && Nd.Parent != InvalidNode) {
      NodeKind PK = Module.node(Nd.Parent).Kind;
      if (PK == NodeKind::NameLoad || PK == NodeKind::NameStore ||
          PK == NodeKind::Param) {
        // The hole participates under its CURRENT (possibly wrong) name.
        std::string Name(Module.valueText(N));
        auto It = LastOccurrence.find(Name);
        if (It != LastOccurrence.end()) {
          EdgeType Kind = PK == NodeKind::NameStore ? EdgeType::LastWrite
                                                    : EdgeType::LastUse;
          Out.Edges[static_cast<size_t>(Kind)].push_back({It->second, I});
          Out.Edges[static_cast<size_t>(Kind)].push_back({I, It->second});
        } else {
          FirstOccurrence.emplace(Name, I);
        }
        LastOccurrence[Name] = I;
      }
    }
    // ComputedFrom: assignment target <- value leaves (coarse: link the
    // Assign node to its children is already covered by Child; link the
    // first child subtree root to the last child subtree root).
    if (Nd.Kind == NodeKind::Assign && Nd.Children.size() >= 2) {
      uint32_t Target = Dense[Nd.Children.front()];
      uint32_t Value = Dense[Nd.Children.back()];
      Out.Edges[static_cast<size_t>(EdgeType::ComputedFrom)].push_back(
          {Value, Target});
    }
  }
  for (size_t I = 0; I + 1 < Tokens.size(); ++I) {
    Out.Edges[static_cast<size_t>(EdgeType::NextToken)].push_back(
        {Tokens[I], Tokens[I + 1]});
    Out.Edges[static_cast<size_t>(EdgeType::PrevToken)].push_back(
        {Tokens[I + 1], Tokens[I]});
  }

  // Candidates: deterministic order (sorted names); representative node =
  // first occurrence, or the hole itself when the name never occurs
  // elsewhere.
  std::vector<std::string> Names(LocalSet.begin(), LocalSet.end());
  std::sort(Names.begin(), Names.end());
  Out.CorrectCandidate = UINT32_MAX;
  for (const std::string &Name : Names) {
    uint32_t Rep = Out.HoleNode;
    auto It = FirstOccurrence.find(Name);
    if (It != FirstOccurrence.end() && It->second != Out.HoleNode)
      Rep = It->second;
    else if (LastOccurrence.count(Name) &&
             LastOccurrence[Name] != Out.HoleNode)
      Rep = LastOccurrence[Name];
    if (Name == CorrectName)
      Out.CorrectCandidate = static_cast<uint32_t>(Out.CandidateNodes.size());
    Out.CandidateNodes.push_back(Rep);
    Out.CandidateNames.push_back(Name);
  }
  if (Out.CorrectCandidate == UINT32_MAX)
    return false;

  // Use sites for localization.
  for (NodeId U : collectUseSites(Module, FnDef)) {
    uint32_t DI = Dense[U];
    if (DI == Out.HoleNode)
      Out.HoleUseIndex = static_cast<uint32_t>(Out.UseSites.size());
    Out.UseSites.push_back(DI);
  }
  return true;
}
