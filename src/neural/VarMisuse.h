//===- neural/VarMisuse.h - VarMisuse task construction ---------*- C++ -*-==//
///
/// \file
/// Builds the training and evaluation data of Section 5.6. GGNN and Great
/// train on synthetic variable-misuse bugs: a use of a variable is replaced
/// by another in-scope variable ("we followed the original works to
/// introduce synthetic changes to the programs in our Python and Java
/// datasets"). At evaluation time the models run over the *unmodified*
/// corpus, where the only wrong names are the realistic seeded mistakes;
/// the distribution mismatch between the two is the experiment.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_NEURAL_VARMISUSE_H
#define NAMER_NEURAL_VARMISUSE_H

#include "corpus/Corpus.h"
#include "neural/ProgramGraph.h"
#include "support/Rng.h"

#include <vector>

namespace namer {
namespace neural {

struct VarMisuseConfig {
  size_t VocabBuckets = 128;
  /// Skip functions with graphs larger than this (CPU budget).
  size_t MaxNodes = 400;
  /// Fraction of synthetic samples that carry an injected bug.
  double BugRate = 0.5;
  uint64_t Seed = 17;
};

/// Synthetic dataset: samples with injected bugs (IsBuggy) and clean
/// counterparts. At most \p MaxSamples samples.
std::vector<GraphSample> buildSyntheticDataset(const corpus::Corpus &C,
                                               const VarMisuseConfig &Config,
                                               size_t MaxSamples);

/// Real evaluation stream: every local-variable use site of the unmodified
/// corpus becomes one sample (hole = the site, CorrectName = whatever is
/// currently there). At most \p MaxSamples samples.
std::vector<GraphSample> buildRealUseSites(const corpus::Corpus &C,
                                           const VarMisuseConfig &Config,
                                           size_t MaxSamples);

} // namespace neural
} // namespace namer

#endif // NAMER_NEURAL_VARMISUSE_H
