//===- namepath/NamePath.h - Name paths (Definition 3.2) --------*- C++ -*-==//
///
/// \file
/// Name paths are Namer's program abstraction for identifier name usages: a
/// path from the root of a transformed statement AST to a leaf subtoken.
/// Each path is a prefix S (a list of (node value, child index) pairs) plus
/// an end node n, which is either a concrete subtoken symbol or the special
/// symbolic node epsilon.
///
/// This header defines the path type, the relational operators ~ and = of
/// Definition 3.4, extraction from trees, and a NamePathTable that interns
/// paths and prefixes into dense ids for the FP-tree miner and the matcher.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_NAMEPATH_NAMEPATH_H
#define NAMER_NAMEPATH_NAMEPATH_H

#include "ast/Tree.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace namer {

/// One element of a name path prefix: a non-terminal node's value and the
/// index of the next node in its child list.
struct PathStep {
  Symbol Value;
  uint32_t Index;

  friend bool operator==(const PathStep &A, const PathStep &B) {
    return A.Value == B.Value && A.Index == B.Index;
  }
  friend auto operator<=>(const PathStep &A, const PathStep &B) = default;
};

/// A name path <S, n>. End == EpsilonSymbol makes the path symbolic.
struct NamePath {
  std::vector<PathStep> Prefix;
  Symbol End = EpsilonSymbol;

  bool isSymbolic() const { return End == EpsilonSymbol; }

  friend bool operator==(const NamePath &A, const NamePath &B) = default;
};

/// Definition 3.4: np1 ~ np2 iff the prefixes are equal.
inline bool samePrefix(const NamePath &A, const NamePath &B) {
  return A.Prefix == B.Prefix;
}

/// Definition 3.4: np1 = np2 iff prefixes are equal and the end nodes are
/// equal or either is epsilon.
inline bool pathEquals(const NamePath &A, const NamePath &B) {
  return samePrefix(A, B) &&
         (A.End == EpsilonSymbol || B.End == EpsilonSymbol || A.End == B.End);
}

/// Extracts all concrete name paths of \p StmtTree in a deterministic
/// top-down traversal (the order of Figure 2(d)). Every leaf produces one
/// path; prefixes are unique by construction because the last prefix step
/// carries the leaf's child index. \p MaxPaths truncates to the first k
/// paths (the paper keeps the first 10; pass 0 for no limit).
std::vector<NamePath> extractNamePaths(const Tree &StmtTree,
                                       size_t MaxPaths = 0);

/// Renders a path in the paper's notation:
/// "NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 1 TestCase 0 True".
std::string formatNamePath(const NamePath &Path, const AstContext &Ctx);

/// Dense id of an interned name path.
using PathId = uint32_t;
/// Dense id of an interned prefix.
using PrefixId = uint32_t;
inline constexpr PathId InvalidPathId = static_cast<PathId>(-1);

/// Interns name paths and their prefixes. Mining and matching work on
/// PathId/PrefixId instead of structural comparison.
class NamePathTable {
public:
  /// Interns \p Path (and its prefix). Idempotent.
  PathId intern(const NamePath &Path);

  /// Returns the id of \p Path if present, InvalidPathId otherwise.
  PathId lookup(const NamePath &Path) const;

  const NamePath &path(PathId Id) const { return Paths[Id]; }
  PrefixId prefixOf(PathId Id) const { return Prefixes[Id]; }
  Symbol endOf(PathId Id) const { return Paths[Id].End; }
  bool isSymbolic(PathId Id) const { return Paths[Id].isSymbolic(); }

  /// Returns the id of the symbolic path with the same prefix as \p Id
  /// (interning it if needed).
  PathId symbolicVersion(PathId Id);

  /// Total-order comparator on path content; used by the miner's sort()
  /// calls so FP-tree layout does not depend on interning order.
  bool less(PathId A, PathId B) const;

  size_t size() const { return Paths.size(); }
  size_t numPrefixes() const { return NextPrefix; }

private:
  struct PathHash {
    size_t operator()(const NamePath &P) const;
  };
  std::vector<NamePath> Paths;
  std::vector<PrefixId> Prefixes; // PathId -> PrefixId
  std::unordered_map<NamePath, PathId, PathHash> Map;
  std::unordered_map<NamePath, PrefixId, PathHash> PrefixMap; // End==eps key
  PrefixId NextPrefix = 0;
};

/// A statement rendered as interned paths: the representation fed to the
/// matcher. Includes a prefix -> end index because satisfaction checks are
/// prefix lookups (Definitions 3.7 and 3.9). Ends are also kept in a
/// case-folded form: consistency patterns compare names case-insensitively
/// ("Intent intent" is consistent) while confusing-word patterns stay
/// case-sensitive ("Equal" vs "Equals" differ).
struct StmtPaths {
  std::vector<PathId> Paths;
  std::unordered_map<PrefixId, Symbol> EndByPrefix;
  std::unordered_map<PrefixId, Symbol> FoldedEndByPrefix;

  /// Builds from a transformed statement tree.
  static StmtPaths fromTree(const Tree &StmtTree, NamePathTable &Table,
                            size_t MaxPaths = 10);

  /// Builds from already-extracted paths whose symbols belong to \p Ctx.
  /// Used by the pipeline's sequential commit step: workers extract paths
  /// against worker-local interners, translate them, and intern here in
  /// deterministic corpus order.
  static StmtPaths fromPaths(const std::vector<NamePath> &Extracted,
                             NamePathTable &Table, AstContext &Ctx);

  /// fromPaths with the case-folded end symbols interned through \p Batch
  /// (a handle over \p Ctx's interner): the commit loop keeps one handle
  /// across all files, so recurring folded names cost a hash lookup
  /// instead of a shard lock.
  static StmtPaths fromPaths(const std::vector<NamePath> &Extracted,
                             NamePathTable &Table, AstContext &Ctx,
                             StringInterner::BatchHandle &Batch);

  /// Rebuilds from already-interned path ids (the incremental replay path:
  /// a cached statement's paths are global PathIds into a snapshotted
  /// table). Reconstructs EndByPrefix/FoldedEndByPrefix exactly as
  /// fromPaths would have: first-wins per prefix, folded ends interned
  /// through \p Batch. Idempotent — interns no new paths, and for
  /// statements committed by the snapshotting build it interns no new
  /// symbols either (every folded end was interned then).
  static StmtPaths fromPathIds(const std::vector<PathId> &Ids,
                               const NamePathTable &Table, AstContext &Ctx,
                               StringInterner::BatchHandle &Batch);

  bool containsPath(PathId Id, const NamePathTable &Table) const;
  bool containsPrefix(PrefixId Id) const {
    return EndByPrefix.find(Id) != EndByPrefix.end();
  }
  /// End symbol at \p Prefix, or EpsilonSymbol if absent.
  Symbol endAt(PrefixId Prefix) const {
    auto It = EndByPrefix.find(Prefix);
    return It == EndByPrefix.end() ? EpsilonSymbol : It->second;
  }
  /// Case-folded end symbol at \p Prefix, or EpsilonSymbol if absent.
  Symbol foldedEndAt(PrefixId Prefix) const {
    auto It = FoldedEndByPrefix.find(Prefix);
    return It == FoldedEndByPrefix.end() ? EpsilonSymbol : It->second;
  }
};

} // namespace namer

#endif // NAMER_NAMEPATH_NAMEPATH_H
