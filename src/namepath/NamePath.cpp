//===- namepath/NamePath.cpp ----------------------------------------------==//

#include "namepath/NamePath.h"

#include "support/Hashing.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cctype>

using namespace namer;

static void extractFrom(const Tree &T, NodeId N,
                        std::vector<PathStep> &Prefix,
                        std::vector<NamePath> &Out) {
  const Node &Nd = T.node(N);
  if (Nd.Children.empty()) {
    Out.push_back(NamePath{Prefix, Nd.Value});
    return;
  }
  for (uint32_t I = 0, E = static_cast<uint32_t>(Nd.Children.size()); I != E;
       ++I) {
    Prefix.push_back(PathStep{Nd.Value, I});
    extractFrom(T, Nd.Children[I], Prefix, Out);
    Prefix.pop_back();
  }
}

std::vector<NamePath> namer::extractNamePaths(const Tree &StmtTree,
                                              size_t MaxPaths) {
  std::vector<NamePath> Out;
  if (StmtTree.empty())
    return Out;
  std::vector<PathStep> Prefix;
  extractFrom(StmtTree, StmtTree.root(), Prefix, Out);
  if (MaxPaths != 0 && Out.size() > MaxPaths)
    Out.resize(MaxPaths);
  // Called once per statement: cache the counter handle, one relaxed add.
  static telemetry::Counter &PathCounter =
      telemetry::metrics().counter("namepath.paths");
  static telemetry::Counter &StmtCounter =
      telemetry::metrics().counter("namepath.statements");
  if (telemetry::enabled()) {
    PathCounter.add(Out.size());
    StmtCounter.add(1);
  }
  return Out;
}

std::string namer::formatNamePath(const NamePath &Path,
                                  const AstContext &Ctx) {
  std::string Out;
  for (const PathStep &Step : Path.Prefix) {
    Out += Ctx.text(Step.Value);
    Out += ' ';
    Out += std::to_string(Step.Index);
    Out += ' ';
  }
  Out += Path.isSymbolic() ? "<eps>" : std::string(Ctx.text(Path.End));
  return Out;
}

size_t NamePathTable::PathHash::operator()(const NamePath &P) const {
  uint64_t H = FnvOffsetBasis;
  for (const PathStep &Step : P.Prefix) {
    H = hashU32(H, Step.Value);
    H = hashU32(H, Step.Index);
  }
  H = hashU32(H, P.End);
  return static_cast<size_t>(H);
}

PathId NamePathTable::intern(const NamePath &Path) {
  auto It = Map.find(Path);
  if (It != Map.end())
    return It->second;
  PathId Id = static_cast<PathId>(Paths.size());
  Paths.push_back(Path);
  Map.emplace(Path, Id);

  NamePath PrefixKey{Path.Prefix, EpsilonSymbol};
  auto PIt = PrefixMap.find(PrefixKey);
  if (PIt == PrefixMap.end())
    PIt = PrefixMap.emplace(std::move(PrefixKey), NextPrefix++).first;
  Prefixes.push_back(PIt->second);
  return Id;
}

PathId NamePathTable::lookup(const NamePath &Path) const {
  auto It = Map.find(Path);
  return It == Map.end() ? InvalidPathId : It->second;
}

PathId NamePathTable::symbolicVersion(PathId Id) {
  NamePath Sym{Paths[Id].Prefix, EpsilonSymbol};
  return intern(Sym);
}

bool NamePathTable::less(PathId A, PathId B) const {
  const NamePath &PA = Paths[A];
  const NamePath &PB = Paths[B];
  if (PA.Prefix != PB.Prefix)
    return std::lexicographical_compare(
        PA.Prefix.begin(), PA.Prefix.end(), PB.Prefix.begin(),
        PB.Prefix.end(), [](const PathStep &X, const PathStep &Y) {
          return X.Value != Y.Value ? X.Value < Y.Value : X.Index < Y.Index;
        });
  return PA.End < PB.End;
}

StmtPaths StmtPaths::fromTree(const Tree &StmtTree, NamePathTable &Table,
                              size_t MaxPaths) {
  return fromPaths(extractNamePaths(StmtTree, MaxPaths), Table,
                   StmtTree.context());
}

namespace {

/// Shared body of the two fromPaths overloads; InternFolded maps the
/// case-folded end text to its symbol (directly or through a batch handle).
template <typename InternFn>
StmtPaths fromPathsImpl(const std::vector<NamePath> &Extracted,
                        NamePathTable &Table, AstContext &Ctx,
                        InternFn &&InternFolded) {
  StmtPaths Result;
  for (const NamePath &Path : Extracted) {
    PathId Id = Table.intern(Path);
    Result.Paths.push_back(Id);
    PrefixId Prefix = Table.prefixOf(Id);
    Result.EndByPrefix.emplace(Prefix, Path.End);
    // Case-fold the end for consistency-pattern comparison.
    std::string Folded(Ctx.text(Path.End));
    for (char &C : Folded)
      C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    Result.FoldedEndByPrefix.emplace(Prefix, InternFolded(Folded));
  }
  return Result;
}

} // namespace

StmtPaths StmtPaths::fromPaths(const std::vector<NamePath> &Extracted,
                               NamePathTable &Table, AstContext &Ctx) {
  return fromPathsImpl(Extracted, Table, Ctx,
                       [&](const std::string &F) { return Ctx.intern(F); });
}

StmtPaths StmtPaths::fromPaths(const std::vector<NamePath> &Extracted,
                               NamePathTable &Table, AstContext &Ctx,
                               StringInterner::BatchHandle &Batch) {
  return fromPathsImpl(Extracted, Table, Ctx,
                       [&](const std::string &F) { return Batch.intern(F); });
}

StmtPaths StmtPaths::fromPathIds(const std::vector<PathId> &Ids,
                                 const NamePathTable &Table, AstContext &Ctx,
                                 StringInterner::BatchHandle &Batch) {
  StmtPaths Result;
  Result.Paths = Ids;
  for (PathId Id : Ids) {
    PrefixId Prefix = Table.prefixOf(Id);
    Symbol End = Table.endOf(Id);
    Result.EndByPrefix.emplace(Prefix, End);
    std::string Folded(Ctx.text(End));
    for (char &C : Folded)
      C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    Result.FoldedEndByPrefix.emplace(Prefix, Batch.intern(Folded));
  }
  return Result;
}

bool StmtPaths::containsPath(PathId Id, const NamePathTable &Table) const {
  auto It = EndByPrefix.find(Table.prefixOf(Id));
  return It != EndByPrefix.end() && It->second == Table.endOf(Id);
}
