//===- transform/AstPlus.h - AST to AST+ transform (Sec. 3.1) ---*- C++ -*-==//
///
/// \file
/// Implements the four transformation steps of Section 3.1 that turn a
/// parsed AST into the transformed AST (AST+) name paths are extracted
/// from:
///
///   1. numeric/string/boolean literals become the special tokens
///      NUM/STR/BOOL;
///   2. every function call and function definition gains a NumArgs(k)
///      parent node;
///   3. every identifier terminal is split into subtokens under a NumST(k)
///      node;
///   4. object/callee subtokens gain an origin parent computed by the
///      points-to and data flow analyses (Section 4.1).
///
/// The transform runs over a whole module tree in place; statements are
/// sliced afterwards, so origins computed on module node ids apply
/// directly.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_TRANSFORM_ASTPLUS_H
#define NAMER_TRANSFORM_ASTPLUS_H

#include "ast/Tree.h"

#include <unordered_map>

namespace namer {

/// Origin decoration computed by the analyses: maps the NodeId of an Ident
/// terminal (pre-transform) to the origin symbol to insert above each of
/// its subtokens. Idents absent from the map get no origin node. The
/// analysis never inserts the "top" origin; values abstracted to top are
/// simply left undecorated.
using OriginMap = std::unordered_map<NodeId, Symbol>;

/// Applies transform steps 1-4 to \p Module in place. \p Origins may be
/// empty (the "w/o A" ablation of Tables 2 and 5).
void transformToAstPlus(Tree &Module, const OriginMap &Origins);

} // namespace namer

#endif // NAMER_TRANSFORM_ASTPLUS_H
