//===- transform/AstPlus.cpp ----------------------------------------------==//

#include "transform/AstPlus.h"

#include "support/Subtokens.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <string>

using namespace namer;

namespace {

/// True if the Ident terminal \p N carries an identifier name (as opposed
/// to an operator or a literal token), judged by its wrapper's kind.
bool identCarriesName(const Tree &T, NodeId N) {
  NodeId Parent = T.node(N).Parent;
  return Parent != InvalidNode && kindCarriesName(T.node(Parent).Kind);
}

/// True if the Ident terminal is a literal token under Num/Str/Bool/None.
bool identIsLiteral(const Tree &T, NodeId N) {
  NodeId Parent = T.node(N).Parent;
  if (Parent == InvalidNode)
    return false;
  switch (T.node(Parent).Kind) {
  case NodeKind::Num:
  case NodeKind::Str:
  case NodeKind::Bool:
  case NodeKind::NoneLit:
    return true;
  default:
    return false;
  }
}

} // namespace

void namer::transformToAstPlus(Tree &Module, const OriginMap &Origins) {
  telemetry::TraceSpan Span("transform.astplus");
  AstContext &Ctx = Module.context();
  // Snapshot: transforms append nodes; only original nodes are rewritten.
  const size_t OriginalSize = Module.size();

  // Intern every label and subtoken of this transform through one batch
  // handle: repeated texts (common subtokens, NumST/NumArgs labels) are
  // cache hits that never touch the shared interner.
  StringInterner::BatchHandle Handle(Ctx.strings());
  Module.setInternHandle(&Handle);

  // Pre-count exactly how many nodes the steps below will append -- one
  // NumArgs parent per call/definition, one Subtoken child per subtoken,
  // one Origin parent per decorated subtoken -- and reserve once, so the
  // node vector never reallocates while the tree grows.
  size_t Added = 0;
  for (NodeId N = 0; N != OriginalSize; ++N) {
    const Node &Nd = Module.node(N);
    if (Nd.Kind == NodeKind::Call || Nd.Kind == NodeKind::New ||
        Nd.Kind == NodeKind::FunctionDef)
      ++Added;
    if (Nd.Kind != NodeKind::Ident)
      continue;
    bool IsName = identCarriesName(Module, N);
    bool IsLiteral = identIsLiteral(Module, N);
    if (!IsName && !IsLiteral)
      continue;
    size_t K =
        IsLiteral ? 1 : std::max<size_t>(countSubtokens(Ctx.text(Nd.Value)), 1);
    Added += K;
    if (Origins.find(N) != Origins.end())
      Added += K; // one Origin parent per subtoken
  }
  Module.reserveNodes(OriginalSize + Added);

  // Step 1: literal abstraction. The literal Ident's value becomes
  // NUM/STR/BOOL so "90" and "17" share name paths.
  for (NodeId N = 0; N != OriginalSize; ++N) {
    const Node &Nd = Module.node(N);
    if (Nd.Kind != NodeKind::Ident || Nd.Parent == InvalidNode)
      continue;
    switch (Module.node(Nd.Parent).Kind) {
    case NodeKind::Num:
      Module.setValue(N, Ctx.numSymbol());
      break;
    case NodeKind::Str:
      Module.setValue(N, Ctx.strSymbol());
      break;
    case NodeKind::Bool:
      Module.setValue(N, Ctx.boolSymbol());
      break;
    default:
      break;
    }
  }

  // Step 2: NumArgs(k) parents over calls and function definitions.
  for (NodeId N = 0; N != OriginalSize; ++N) {
    const Node &Nd = Module.node(N);
    size_t ArgCount = 0;
    if (Nd.Kind == NodeKind::Call || Nd.Kind == NodeKind::New) {
      // Call children: callee followed by arguments; New children: TypeRef
      // followed by arguments.
      ArgCount = Nd.Children.empty() ? 0 : Nd.Children.size() - 1;
    } else if (Nd.Kind == NodeKind::FunctionDef) {
      for (NodeId C : Nd.Children)
        if (Module.node(C).Kind == NodeKind::ParamList)
          ArgCount = Module.node(C).Children.size();
    } else {
      continue;
    }
    std::string Label = "NumArgs(" + std::to_string(ArgCount) + ")";
    Module.insertAbove(N, NodeKind::NumArgs, Handle.intern(Label));
  }

  // Step 3: subtoken splitting. Each name Ident becomes a NumST(k) node
  // with Subtoken children; literal tokens get NumST(1). Subtokens are
  // contiguous substrings of the interned name, so the split produces
  // views into the interner's stable storage -- no per-subtoken copy.
  for (NodeId N = 0; N != OriginalSize; ++N) {
    // Copy, not reference: addNode below appends to the node vector.
    const Node Nd = Module.node(N);
    if (Nd.Kind != NodeKind::Ident)
      continue;
    bool IsName = identCarriesName(Module, N);
    bool IsLiteral = identIsLiteral(Module, N);
    if (!IsName && !IsLiteral)
      continue;

    std::string_view Text = Ctx.text(Nd.Value);
    std::vector<std::string_view> Subtokens;
    if (IsLiteral) {
      Subtokens.push_back(Text);
    } else {
      Subtokens = splitSubtokenViews(Text);
      if (Subtokens.empty())
        Subtokens.push_back(Text);
    }

    std::string Label = "NumST(" + std::to_string(Subtokens.size()) + ")";
    Module.setKind(N, NodeKind::NumST);
    Module.setValue(N, Handle.intern(Label));
    std::vector<NodeId> SubtokenIds;
    for (std::string_view Tok : Subtokens)
      SubtokenIds.push_back(
          Module.addNode(NodeKind::Subtoken, Tok, N, Nd.Line));

    // Step 4: origin decoration, one Origin parent per subtoken so each
    // subtoken path carries the semantic context (Figure 2(c)).
    auto It = Origins.find(N);
    if (It == Origins.end())
      continue;
    for (NodeId Sub : SubtokenIds)
      Module.insertAbove(Sub, NodeKind::Origin, It->second);
  }
  Module.setInternHandle(nullptr);
  if (telemetry::enabled()) {
    // Cached reference: one registry lookup per process, not per file.
    static telemetry::Counter &NodesAdded =
        telemetry::metrics().counter("transform.nodes_added");
    NodesAdded.add(Module.size() - OriginalSize);
  }
}
