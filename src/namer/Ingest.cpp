//===- namer/Ingest.cpp ---------------------------------------------------==//

#include "namer/Ingest.h"

#include "support/TextTable.h"

#include <cstdio>

using namespace namer;
using namespace namer::ingest;

const char *namer::ingest::ingestErrorKindName(IngestErrorKind Kind) {
  switch (Kind) {
  case IngestErrorKind::FileTooLarge:
    return "file-too-large";
  case IngestErrorKind::TokenBudget:
    return "token-budget";
  case IngestErrorKind::NodeBudget:
    return "node-budget";
  case IngestErrorKind::DepthBudget:
    return "depth-budget";
  case IngestErrorKind::Deadline:
    return "deadline";
  case IngestErrorKind::WorkerException:
    return "worker-exception";
  }
  return "unknown";
}

std::vector<size_t> QuarantineLog::countsByKind() const {
  std::vector<size_t> Counts(kNumIngestErrorKinds, 0);
  for (const QuarantineRecord &R : Records)
    ++Counts[static_cast<size_t>(R.Kind)];
  return Counts;
}

std::string QuarantineLog::summaryTable() const {
  TextTable Table;
  Table.setHeader({"File", "Kind", "Offset", "Detail"});
  for (const QuarantineRecord &R : Records)
    Table.addRow({R.File, ingestErrorKindName(R.Kind),
                  std::to_string(R.ByteOffset), R.Detail});
  return Table.render();
}

namespace {

std::string jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

std::string QuarantineLog::json() const {
  std::string Out = "[";
  bool First = true;
  for (const QuarantineRecord &R : Records) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "{\"byte_offset\": " + std::to_string(R.ByteOffset) +
           ", \"detail\": \"" + jsonEscape(R.Detail) + "\", \"file\": \"" +
           jsonEscape(R.File) + "\", \"kind\": \"" +
           ingestErrorKindName(R.Kind) + "\"}";
  }
  Out += "]";
  return Out;
}
