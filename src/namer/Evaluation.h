//===- namer/Evaluation.h - The Section 5 evaluation protocol ---*- C++ -*-==//
///
/// \file
/// Drives the paper's evaluation over a built pipeline:
///
///   1. a small set of violations is labeled (the paper labels 120 by
///      hand, half true / half false; the corpus oracle replays that),
///   2. the defect classifier trains on those labels,
///   3. a random sample of the remaining violations is classified,
///   4. every resulting report is inspected and counted as a semantic
///      defect, code quality issue, or false positive.
///
/// Tables 2, 4, 5, 10 and 11 are tabulations of EvaluationResult.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_NAMER_EVALUATION_H
#define NAMER_NAMER_EVALUATION_H

#include "corpus/Oracle.h"
#include "namer/Pipeline.h"

#include <map>

namespace namer {

struct EvaluationConfig {
  /// Number of violations labeled for training (paper: 120, balanced).
  size_t NumLabeled = 120;
  /// Number of violations sampled for inspection (paper: 300).
  size_t NumEvaluated = 300;
  uint64_t Seed = 99;
};

/// One inspected report.
struct InspectedReport {
  Report R;
  corpus::InspectionOutcome Outcome;
};

struct EvaluationResult {
  size_t ViolationsEvaluated = 0;
  std::vector<InspectedReport> Reports;
  ml::Metrics TrainingMetrics;
  std::string SelectedModel;

  size_t numReports() const { return Reports.size(); }
  size_t numSemantic() const;
  size_t numQuality() const;
  size_t numFalsePositives() const;
  double precision() const;
  /// Code-quality category breakdown (Table 4 rows).
  std::map<corpus::IssueCategory, size_t> qualityBreakdown() const;
};

/// Runs the protocol. The pipeline must be built; training is performed
/// here when the pipeline's configuration uses the classifier.
EvaluationResult evaluatePipeline(NamerPipeline &Pipeline,
                                  const corpus::InspectionOracle &Oracle,
                                  const EvaluationConfig &Config);

/// Labels violations with the oracle until \p Target labels are collected,
/// balanced between true and false. Returns the selected indices (into
/// Pipeline.violations()) and their labels; used both by evaluatePipeline
/// and by benches that train standalone classifiers.
void collectBalancedLabels(const NamerPipeline &Pipeline,
                           const corpus::InspectionOracle &Oracle,
                           size_t Target, uint64_t Seed,
                           std::vector<size_t> &Indices,
                           std::vector<bool> &Labels);

} // namespace namer

#endif // NAMER_NAMER_EVALUATION_H
