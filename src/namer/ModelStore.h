//===- namer/ModelStore.h - Versioned binary model file ---------*- C++ -*-==//
///
/// \file
/// The persistent half of the mine-once / scan-many split (DESIGN.md,
/// "Model store & incremental scan"): everything the scan phase needs --
/// kept patterns with lineage stats, classifier weights + PCA /
/// standardization, confusing-word pairs, the interner and name-path-table
/// snapshots, and the per-file incremental manifest -- serialized into one
/// versioned section-table file.
///
/// Layout (all multi-byte integers little-endian):
///
///   header   : magic "NAMRMDL1" (8) | endian marker u32 (native order)
///            | schema_version u32 | section count u32 | reserved u32
///   table    : per section, 32 bytes: id u64 | offset u64 | length u64
///            | FNV-1a checksum u64
///   payloads : meta (config echo + git rev), strings, paths, patterns,
///              pairs, classifier, files
///
/// The endian marker is the one field written in *native* byte order: a
/// file produced on a big-endian host reads back as 0x04030201 and is
/// rejected as BadEndian before any payload is touched. Unknown section
/// ids are skipped (forward compatibility); missing required sections are
/// typed errors.
///
/// Loading is zero-copy: the file is mapped through support/Arena::mapFile
/// and every parsed view (strings, details, paths) points into the
/// mapping. Any malformed input -- truncation, bit flips, bad ids, short
/// sections -- fails with a typed ModelError, never a crash; checksums are
/// verified (span `model.verify`) before any cross-referenced id is
/// trusted, and every id is range-checked during parse.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_NAMER_MODELSTORE_H
#define NAMER_NAMER_MODELSTORE_H

#include "classifier/DefectClassifier.h"
#include "corpus/Corpus.h"
#include "histmine/ConfusingPairs.h"
#include "namer/Incremental.h"
#include "pattern/Miner.h"
#include "support/Arena.h"

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace namer {
namespace model {

/// Bumped on any incompatible layout change; files with another version
/// fail typed (BadVersion), never misparse.
inline constexpr uint32_t kSchemaVersion = 1;

/// Why a model file failed to load. Keep modelErrorKindName in sync.
enum class ModelErrorKind : uint8_t {
  Io,             ///< file unreadable / unwritable (or injected short write)
  BadMagic,       ///< not a model file
  BadEndian,      ///< written on a host with different byte order
  BadVersion,     ///< schema_version mismatch
  Truncated,      ///< file shorter than its header/table/sections claim
  BadChecksum,    ///< a section's FNV checksum does not match its bytes
  SectionMissing, ///< a required section is absent from the table
  Malformed,      ///< a section's content is internally inconsistent
  ConfigMismatch, ///< model's config echo conflicts with the pipeline's
};

constexpr size_t kNumModelErrorKinds = 9;

/// Stable kebab-case name, e.g. "bad-checksum"; used for telemetry and
/// error output (the PR-4 error-taxonomy convention).
const char *modelErrorKindName(ModelErrorKind Kind);

/// One-line operator-facing remediation for each reject kind ("delete it
/// and re-mine", "re-run with the flags it was mined with", ...).
const char *modelErrorRemediation(ModelErrorKind Kind);

/// Typed loader/saver failure. Loading any corrupt model file throws this
/// (or, under fault injection with FaultKind::Throw, InjectedFault); it
/// never crashes.
class ModelError : public std::runtime_error {
public:
  ModelError(ModelErrorKind Kind, const std::string &Detail)
      : std::runtime_error(std::string(modelErrorKindName(Kind)) + ": " +
                           Detail),
        Kind(Kind) {}
  ModelErrorKind kind() const { return Kind; }

private:
  ModelErrorKind Kind;
};

/// The stderr diagnostic namer-scan/namer-serve print for a rejected
/// model: "model error [<kind>]: <what>\n  hint: <remediation>\n".
std::string formatModelError(const ModelError &E);

/// The deserialized (or to-be-serialized) model, as plain data. String
/// views point into the source the file was parsed from (the arena
/// mapping) or, when assembling for save, into live interner storage; the
/// owner must outlive the ModelFile.
struct ModelFile {
  // --- meta: config echo + provenance -----------------------------------
  corpus::Language Lang = corpus::Language::Python;
  bool UseAnalyses = true;
  bool UseClassifier = true;
  uint64_t Seed = 0;
  /// Mining configuration the model was produced under. MineShards is
  /// deliberately not serialized: it only changes how the mine was
  /// parallelized, never its output.
  MinerConfig Miner;
  ingest::IngestLimits Limits;
  /// Git revision of the producing binary; informational only.
  std::string_view GitRev;
  bool ClassifierPresent = false;

  // --- sections ----------------------------------------------------------
  /// Interner snapshot, indexed by Symbol. [0] is the reserved epsilon
  /// entry (not serialized; filled on parse).
  std::vector<std::string_view> Strings;
  /// Name-path-table snapshot, indexed by PathId; re-interning in index
  /// order reproduces every PathId and PrefixId.
  std::vector<NamePath> Paths;
  std::vector<NamePattern> Patterns;
  /// Confusing-word pairs, sorted by (mistaken, correct) for byte-stable
  /// output.
  std::vector<ConfusingPair> Pairs;
  /// Valid iff ClassifierPresent.
  DefectClassifier::Snapshot Classifier;
  incremental::FileManifest Manifest;
};

/// Renders \p File into the on-disk byte format.
std::string serialize(const ModelFile &File);

/// Parses a model image. Throws ModelError on any defect; on success every
/// cross-reference (symbols, path ids, enum values) has been range-checked.
/// Views in the result alias \p Data.
ModelFile parse(std::string_view Data);

/// serialize() + atomic-enough write to \p Path. Telemetry: span
/// `model.save`, counters `model.bytes` / `model.sections`. Fault site
/// `model.save` (non-Throw kinds write a truncated file, then throw
/// ModelError{Io}). Throws ModelError{Io} on write failure.
void save(const std::string &Path, const ModelFile &File);

/// Maps \p Path through \p Mem (zero-copy; views in the result alias the
/// mapping, which lives as long as \p Mem) and parses it. Telemetry: spans
/// `model.load` / `model.verify`, counters `model.bytes` /
/// `model.sections` / `model.load_us`. Fault site `model.load` (non-Throw
/// kinds truncate the mapped image, exercising the short-read paths).
ModelFile load(const std::string &Path, Arena &Mem);

} // namespace model
} // namespace namer

#endif // NAMER_NAMER_MODELSTORE_H
