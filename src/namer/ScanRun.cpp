//===- namer/ScanRun.cpp --------------------------------------------------==//

#include "namer/ScanRun.h"

#include "namer/FindingsExport.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

using namespace namer;

std::vector<Explanation>
namer::selectFindings(const NamerPipeline &P,
                      const FindingSelectOptions &Opts) {
  bool Classify = Opts.UseClassifier && P.classifierTrained();
  std::unordered_set<std::string_view> Only(Opts.OnlyPaths.begin(),
                                            Opts.OnlyPaths.end());
  // Keep the violation next to its report so the explainability layer can
  // rebuild the full evidence chain for the selected ones.
  struct Finding {
    Report R;
    Violation V;
  };
  std::vector<Finding> Findings;
  for (const Violation &V : P.violations()) {
    Report R = P.makeReport(V);
    if (!Opts.PathPrefix.empty() && R.File.rfind(Opts.PathPrefix, 0) != 0)
      continue;
    if (!Only.empty() && !Only.count(R.File))
      continue;
    if (Classify && !P.classify(V))
      continue;
    Findings.push_back(Finding{std::move(R), V});
  }
  // Selection: most confident first, ties broken by the canonical report
  // order so truncation is deterministic at every thread count.
  std::sort(Findings.begin(), Findings.end(),
            [](const Finding &A, const Finding &B) {
              if (A.R.Confidence != B.R.Confidence)
                return A.R.Confidence > B.R.Confidence;
              return reportOrderLess(A.R, B.R);
            });
  if (Findings.size() > Opts.MaxReports)
    Findings.resize(Opts.MaxReports);

  std::vector<Explanation> Explanations;
  Explanations.reserve(Findings.size());
  for (const Finding &F : Findings)
    Explanations.push_back(explainViolation(P, F.V));
  sortExplanations(Explanations);
  return Explanations;
}

std::string namer::renderReportLine(const Report &R) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%u", R.Line);
  std::string Line = R.File;
  Line += ":";
  Line += Buf;
  Line += ": naming issue: '";
  Line += R.Original;
  Line += "' is suspicious here; suggested fix: '";
  Line += R.Suggested;
  Line += "' [";
  Line += R.Kind == PatternKind::Consistency ? "consistency"
                                             : "confusing-word";
  Line += "]\n";
  return Line;
}
