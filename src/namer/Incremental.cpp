//===- namer/Incremental.cpp ----------------------------------------------==//

#include "namer/Incremental.h"

#include "support/Hashing.h"

using namespace namer;
using namespace namer::incremental;

uint64_t incremental::contentHash(std::string_view Contents) {
  return hashString(Contents);
}

ScanPlan incremental::diffManifest(
    const FileManifest &Manifest,
    const std::vector<const corpus::SourceFile *> &Files) {
  std::unordered_map<std::string_view, size_t> ByPath;
  ByPath.reserve(Manifest.Files.size());
  for (size_t I = 0; I != Manifest.Files.size(); ++I)
    ByPath.emplace(Manifest.Files[I].Path, I);

  ScanPlan Plan;
  Plan.Entries.resize(Files.size());
  std::vector<uint8_t> Seen(Manifest.Files.size(), 0);
  for (size_t I = 0; I != Files.size(); ++I) {
    ScanPlan::Entry &E = Plan.Entries[I];
    auto It = ByPath.find(Files[I]->Path);
    if (It == ByPath.end()) {
      E.Change = FileChange::Added;
      ++Plan.Added;
      continue;
    }
    Seen[It->second] = 1;
    const FileState &Old = Manifest.Files[It->second];
    std::string_view Contents = Files[I]->contents();
    if (Old.Size == Contents.size() && Old.Hash == contentHash(Contents)) {
      E.Change = FileChange::Unchanged;
      E.ManifestIndex = It->second;
      ++Plan.Unchanged;
    } else {
      E.Change = FileChange::Modified;
      ++Plan.Modified;
    }
  }
  for (uint8_t S : Seen)
    if (!S)
      ++Plan.Deleted;
  return Plan;
}
