//===- namer/Incremental.h - Per-file manifest and change diffing -*- C++ -*-=//
///
/// \file
/// The incremental half of the persistent model store (DESIGN.md, "Model
/// store & incremental scan"): a per-file manifest recording what the last
/// build saw (path, size, content hash, quarantine status) together with
/// the per-file artifacts a re-scan would otherwise have to recompute (the
/// committed statement records, as global PathIds into the snapshotted
/// NamePathTable). On rescan the manifest is diffed against the current
/// corpus; unchanged files replay their cached statements and quarantine
/// records, and only added/modified files pay for parse + analyses +
/// extraction again.
///
/// Determinism: whether a file is "unchanged" is a pure function of (path,
/// byte size, FNV-1a content hash), and the scan phase consumes cached and
/// fresh files interleaved in corpus order, so the statement stream -- and
/// therefore every finding -- is byte-identical to a full rescan. New
/// symbols introduced by modified files receive different numeric ids than
/// a cold run would assign, which is sound because every output orders and
/// renders by text, never by id (see the determinism argument in
/// DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_NAMER_INCREMENTAL_H
#define NAMER_NAMER_INCREMENTAL_H

#include "corpus/Corpus.h"
#include "namepath/NamePath.h"
#include "namer/Ingest.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace namer {
namespace incremental {

/// One committed statement of one file, in model-global ids: everything
/// the scan phase needs to rebuild the StmtRecord without re-parsing.
struct CachedStmt {
  uint32_t Line = 0;
  uint64_t TextHash = 0;
  std::vector<PathId> Paths;
};

/// What the last build knew about one corpus file, in corpus order.
struct FileState {
  std::string Path;
  uint64_t Size = 0;
  uint64_t Hash = 0; ///< FNV-1a over the file bytes
  /// Quarantine replay data. A quarantined file contributed no FileId and
  /// no statements; re-scanning it would deterministically re-quarantine
  /// it, so the record is replayed instead.
  bool Quarantined = false;
  ingest::IngestErrorKind QuarantineKind = ingest::IngestErrorKind::WorkerException;
  uint64_t QuarantineByteOffset = 0;
  std::string QuarantineDetail;
  /// Parser diagnostics the file produced (telemetry parity only).
  uint32_t ParseErrors = 0;
  std::vector<CachedStmt> Stmts;
};

/// The per-file manifest of one build, in corpus order.
struct FileManifest {
  std::vector<FileState> Files;

  bool empty() const { return Files.empty(); }
  size_t size() const { return Files.size(); }
  void clear() { Files.clear(); }
};

/// How one current corpus file relates to the manifest.
enum class FileChange : uint8_t {
  Unchanged, ///< same path, size and content hash: replay the cache
  Added,     ///< path not in the manifest: ingest
  Modified,  ///< path known but size or hash differ: ingest
};

/// The rescan work list: one entry per current corpus file (corpus order),
/// plus the count of manifest entries whose file disappeared.
struct ScanPlan {
  struct Entry {
    FileChange Change = FileChange::Added;
    /// Index into the manifest for Unchanged entries; unused otherwise.
    size_t ManifestIndex = 0;
  };
  std::vector<Entry> Entries;
  size_t Unchanged = 0;
  size_t Added = 0;
  size_t Modified = 0;
  size_t Deleted = 0;
};

/// FNV-1a content hash of one file's bytes (the manifest fingerprint).
uint64_t contentHash(std::string_view Contents);

/// Diffs \p Manifest against the current corpus file list (corpus order)
/// and classifies every file as unchanged / added / modified; manifest
/// entries without a surviving path are counted as deleted. Pure function
/// of the inputs.
ScanPlan diffManifest(const FileManifest &Manifest,
                      const std::vector<const corpus::SourceFile *> &Files);

} // namespace incremental
} // namespace namer

#endif // NAMER_NAMER_INCREMENTAL_H
