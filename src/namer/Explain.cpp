//===- namer/Explain.cpp --------------------------------------------------==//

#include "namer/Explain.h"

#include "support/Telemetry.h"

#include <cassert>
#include <cstdio>

using namespace namer;

namespace {

std::string fmt(double V, const char *Spec = "%.6f") {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), Spec, V);
  return Buf;
}

/// Re-indents a multi-line block (formatPattern output) under \p Indent.
std::string indentBlock(const std::string &Block, const char *Indent) {
  std::string Out;
  size_t Start = 0;
  while (Start < Block.size()) {
    size_t End = Block.find('\n', Start);
    if (End == std::string::npos)
      End = Block.size();
    Out += Indent;
    Out.append(Block, Start, End - Start);
    Out += '\n';
    Start = End + 1;
  }
  return Out;
}

} // namespace

Explanation namer::explainViolation(const NamerPipeline &P,
                                    const Violation &V,
                                    size_t MaxWitnesses) {
  telemetry::TraceSpan Span("report.explain");
  assert(V.Pattern < P.patterns().size() && "pattern id out of range");
  const NamePattern &Pat = P.patterns()[V.Pattern];
  const NamePathTable &Table = P.table();
  const AstContext &Ctx = P.context();

  Explanation E;
  E.R = P.makeReport(V);

  E.Pattern.Id = V.Pattern;
  E.Pattern.Kind = Pat.Kind;
  E.Pattern.Rendered = formatPattern(Pat, Table, Ctx);
  E.Pattern.Support = Pat.Support;
  E.Pattern.DatasetMatches = Pat.DatasetMatches;
  E.Pattern.DatasetSatisfactions = Pat.DatasetSatisfactions;
  E.Pattern.DatasetViolations = Pat.DatasetViolations;
  E.Pattern.SatisfactionRate = Pat.datasetSatisfactionRate();
  E.Pattern.ConditionSize = Pat.Condition.size();

  // Witnesses: the pipeline captured satisfying statements in corpus
  // order; cite their conforming name at the first deduction position.
  PrefixId DedPrefix = Table.prefixOf(Pat.Deduction.front());
  for (StmtId W : P.patternWitnesses(V.Pattern)) {
    if (E.Witnesses.size() >= MaxWitnesses)
      break;
    const StmtRecord &Stmt = P.statements()[W];
    WitnessRef Ref;
    Ref.File = P.filePath(Stmt.File);
    Ref.Line = Stmt.Line;
    Symbol End = Stmt.Paths.endAt(DedPrefix);
    if (End != EpsilonSymbol)
      Ref.Name = std::string(Ctx.text(End));
    for (PathId Id : Stmt.Paths.Paths)
      if (Table.prefixOf(Id) == DedPrefix) {
        Ref.PathText = formatNamePath(Table.path(Id), Ctx);
        break;
      }
    E.Witnesses.push_back(std::move(Ref));
  }

  if (P.classifierTrained()) {
    std::vector<double> Features = P.features(V);
    DefectClassifier::FeatureAttribution A =
        P.classifier().attribute(Features);
    E.Attribution.Present = true;
    E.Attribution.Model = P.classifier().selectedFamily();
    E.Attribution.Bias = A.Bias;
    E.Attribution.Decision = A.Decision;
    E.Attribution.Contributions.reserve(Features.size());
    for (size_t I = 0; I != Features.size(); ++I) {
      FeatureContribution C;
      C.Feature = ViolationFeatureNames[I];
      C.Value = Features[I];
      C.Standardized = A.Standardized[I];
      C.Weight = A.Weights[I];
      C.Contribution = A.Weights[I] * A.Standardized[I];
      E.Attribution.Contributions.push_back(std::move(C));
    }
  }

  if (Pat.Kind == PatternKind::ConfusingWord) {
    SuggestedFix Fix =
        deriveFix(Pat, P.statements()[V.Stmt].Paths, Table);
    E.WordPair.Present = true;
    E.WordPair.Mistaken = std::string(Ctx.text(Fix.Original));
    E.WordPair.Correct = std::string(Ctx.text(Fix.Suggested));
    E.WordPair.CommitCount = P.pairs().pairCount(Fix.Original, Fix.Suggested);
  }

  telemetry::count("report.explanations");
  telemetry::count("report.witnesses", E.Witnesses.size());
  return E;
}

std::string namer::renderExplanation(const Explanation &E) {
  const char *KindName = E.Pattern.Kind == PatternKind::Consistency
                             ? "consistency"
                             : "confusing-word";
  std::string Out;
  Out += E.R.File + ":" + std::to_string(E.R.Line) + ": '" + E.R.Original +
         "' -> '" + E.R.Suggested + "' [" + KindName + "]\n";

  Out += "  pattern #" + std::to_string(E.Pattern.Id) + " (support " +
         std::to_string(E.Pattern.Support) + ", dataset " +
         std::to_string(E.Pattern.DatasetMatches) + " matched / " +
         std::to_string(E.Pattern.DatasetSatisfactions) + " satisfied / " +
         std::to_string(E.Pattern.DatasetViolations) +
         " violated, satisfaction rate " + fmt(E.Pattern.SatisfactionRate) +
         "):\n";
  Out += indentBlock(E.Pattern.Rendered, "    ");

  if (E.WordPair.Present)
    Out += "  confusing word pair: '" + E.WordPair.Mistaken + "' -> '" +
           E.WordPair.Correct + "' renamed in " +
           std::to_string(E.WordPair.CommitCount) + " commit(s)\n";

  Out += "  witnesses (statements satisfying the pattern):\n";
  if (E.Witnesses.empty())
    Out += "    (none captured)\n";
  for (const WitnessRef &W : E.Witnesses) {
    Out += "    " + W.File + ":" + std::to_string(W.Line) + ": uses '" +
           W.Name + "'";
    if (!W.PathText.empty())
      Out += " at " + W.PathText;
    Out += '\n';
  }

  if (E.Attribution.Present) {
    Out += "  classifier " + E.Attribution.Model + ": decision " +
           fmt(E.Attribution.Decision) + " = bias " +
           fmt(E.Attribution.Bias) + " + contributions (weight x value):\n";
    for (const FeatureContribution &C : E.Attribution.Contributions)
      Out += "    " + fmt(C.Contribution, "%+.6f") + "  " + C.Feature +
             " (value " + fmt(C.Value) + ", weight " + fmt(C.Weight) +
             ")\n";
  } else {
    Out += "  classifier: off (reported unfiltered; confidence reads 0)\n";
  }
  return Out;
}
