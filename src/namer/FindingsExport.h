//===- namer/FindingsExport.h - SARIF / findings exporters ------*- C++ -*-==//
///
/// \file
/// Machine renderings of Explanations, built for CI surfaces:
///
///   * sarifJson() -- SARIF 2.1.0 (loadable by GitHub code scanning and
///     the VS Code SARIF viewer). Rules are the violated patterns, carrying
///     the pattern rendering as help text plus mining support / confidence
///     properties; results are the findings with physical locations, fix
///     suggestions in the message and properties, and witness citations.
///   * findingsJson() -- the flat {meta, findings[]} document
///     (kFindingsSchemaVersion, git rev, config echo): the machine-diffable
///     companion of telemetry's statsJson for the *output* of a run rather
///     than its runtime.
///
/// Both exporters are deterministic and byte-stable: keys are emitted in
/// sorted order, doubles print with a fixed format, and the input order is
/// pinned by sortExplanations() -- (file, line, original, suggested, kind),
/// a total order on reports, so two runs at different thread counts emit
/// identical bytes. The meta echo deliberately excludes the thread count
/// for the same reason.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_NAMER_FINDINGSEXPORT_H
#define NAMER_NAMER_FINDINGSEXPORT_H

#include "namer/Explain.h"

#include <string>
#include <vector>

namespace namer {

/// Schema version of the flat findings JSON; bumped whenever a key is
/// renamed or removed.
inline constexpr int kFindingsSchemaVersion = 1;

/// Run description echoed into both exporters. Deliberately excludes
/// anything schedule- or host-dependent (thread count, timings) so golden
/// files stay byte-identical across runs.
struct ExportMeta {
  std::string Tool = "namer-scan";
  std::string ToolVersion = "1.0.0";
  std::string GitRev = "unknown";
  /// Config echo: the knobs that shape the findings themselves.
  std::string Lang = "python";
  bool UseClassifier = true;
  size_t MaxReports = 0;
  /// Files the pipeline quarantined (skipped) during ingestion. Part of
  /// the meta block so a findings file is explicit about reduced coverage.
  size_t QuarantinedFiles = 0;
};

/// The canonical report order: (file, line, original, suggested, kind).
/// Total on distinct findings (the pipeline deduplicates per
/// statement/fix), so sorting with it is schedule-independent.
bool reportOrderLess(const Report &A, const Report &B);

/// Sorts findings into the canonical report order.
void sortExplanations(std::vector<Explanation> &Findings);

/// SARIF 2.1.0 document over \p Findings (must be sorted with
/// sortExplanations for byte-stability).
std::string sarifJson(const std::vector<Explanation> &Findings,
                      const ExportMeta &Meta);

/// Flat {meta, findings[]} JSON over \p Findings (same ordering contract).
std::string findingsJson(const std::vector<Explanation> &Findings,
                         const ExportMeta &Meta);

} // namespace namer

#endif // NAMER_NAMER_FINDINGSEXPORT_H
