//===- namer/ModelStore.cpp -----------------------------------------------==//

#include "namer/ModelStore.h"

#include "support/FaultInjector.h"
#include "support/Hashing.h"
#include "support/Telemetry.h"

#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>

using namespace namer;
using namespace namer::model;

const char *model::modelErrorKindName(ModelErrorKind Kind) {
  switch (Kind) {
  case ModelErrorKind::Io:
    return "io";
  case ModelErrorKind::BadMagic:
    return "bad-magic";
  case ModelErrorKind::BadEndian:
    return "bad-endian";
  case ModelErrorKind::BadVersion:
    return "bad-version";
  case ModelErrorKind::Truncated:
    return "truncated";
  case ModelErrorKind::BadChecksum:
    return "bad-checksum";
  case ModelErrorKind::SectionMissing:
    return "section-missing";
  case ModelErrorKind::Malformed:
    return "malformed";
  case ModelErrorKind::ConfigMismatch:
    return "config-mismatch";
  }
  return "unknown";
}

const char *model::modelErrorRemediation(ModelErrorKind Kind) {
  switch (Kind) {
  case ModelErrorKind::Io:
    return "check that the path exists and is readable/writable; re-run "
           "with --model-out to regenerate it";
  case ModelErrorKind::BadMagic:
    return "the file is not a namer model; point --model-in at a file "
           "produced by --model-out";
  case ModelErrorKind::BadEndian:
    return "the model was written on a host with different byte order; "
           "re-mine it on this host";
  case ModelErrorKind::BadVersion:
    return "the model was written by an incompatible namer version; "
           "re-mine it with this binary";
  case ModelErrorKind::Truncated:
    return "the file is shorter than its header claims (interrupted "
           "write?); delete it and re-mine";
  case ModelErrorKind::BadChecksum:
    return "a section's checksum does not match its bytes (corruption in "
           "transit or on disk); delete it and re-mine";
  case ModelErrorKind::SectionMissing:
    return "a required section is absent; the file was produced by an "
           "incompatible writer -- re-mine it with this binary";
  case ModelErrorKind::Malformed:
    return "a section's content is internally inconsistent; delete the "
           "file and re-mine";
  case ModelErrorKind::ConfigMismatch:
    return "the model was mined under a different configuration; re-run "
           "with the flags it was mined with, or re-mine under the "
           "current ones";
  }
  return "delete the model file and re-mine";
}

std::string model::formatModelError(const ModelError &E) {
  std::string Out = "model error [";
  Out += modelErrorKindName(E.kind());
  Out += "]: ";
  Out += E.what();
  Out += "\n  hint: ";
  Out += modelErrorRemediation(E.kind());
  Out += "\n";
  return Out;
}

namespace {

constexpr char kMagic[8] = {'N', 'A', 'M', 'R', 'M', 'D', 'L', '1'};
constexpr uint32_t kEndianMarker = 0x01020304u;
constexpr size_t kHeaderBytes = 24;
constexpr size_t kTableEntryBytes = 32;
/// Sanity cap far above the section count any schema will use; rejects
/// garbage headers before a huge table allocation.
constexpr uint32_t kMaxSections = 64;

enum SectionId : uint64_t {
  SecMeta = 1,
  SecStrings = 2,
  SecPaths = 3,
  SecPatterns = 4,
  SecPairs = 5,
  SecClassifier = 6,
  SecFiles = 7,
};
constexpr uint64_t kRequiredSections[] = {
    SecMeta,  SecStrings,     SecPaths, SecPatterns,
    SecPairs, SecClassifier, SecFiles};

[[noreturn]] void fail(ModelErrorKind Kind, const std::string &Detail) {
  throw ModelError(Kind, Detail);
}

// --- writer ----------------------------------------------------------------

/// Appends little-endian primitives to a byte buffer. All integer payloads
/// go through these shifts, so the on-disk order is LE on every host; only
/// the header's endian marker is written in native order (see the header
/// comment in ModelStore.h).
class Writer {
public:
  explicit Writer(std::string &Out) : Out(Out) {}

  void u8(uint8_t V) { Out.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void f64(double V) { u64(std::bit_cast<uint64_t>(V)); }
  void str(std::string_view S) {
    u32(static_cast<uint32_t>(S.size()));
    Out.append(S.data(), S.size());
  }

private:
  std::string &Out;
};

// --- reader ----------------------------------------------------------------

/// Bounds-checked cursor over one checksummed section. Running past the
/// section end is Malformed (the checksum already matched, so the content
/// contradicts its own counts), as is leaving bytes unconsumed.
class Reader {
public:
  Reader(std::string_view Data, std::string Name)
      : Data(Data), Name(std::move(Name)) {}

  uint8_t u8() {
    need(1);
    return static_cast<uint8_t>(Data[Pos++]);
  }
  uint32_t u32() {
    need(4);
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(Data[Pos + I]))
           << (8 * I);
    Pos += 4;
    return V;
  }
  uint64_t u64() {
    need(8);
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(Data[Pos + I]))
           << (8 * I);
    Pos += 8;
    return V;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string_view str() {
    uint32_t Len = u32();
    need(Len);
    std::string_view S = Data.substr(Pos, Len);
    Pos += Len;
    return S;
  }

  void finish() const {
    if (Pos != Data.size())
      fail(ModelErrorKind::Malformed,
           Name + " section has " + std::to_string(Data.size() - Pos) +
               " trailing bytes");
  }

private:
  void need(size_t N) const {
    if (Data.size() - Pos < N)
      fail(ModelErrorKind::Malformed, Name + " section ends mid-value");
  }
  std::string_view Data;
  size_t Pos = 0;
  std::string Name;
};

// --- section payloads ------------------------------------------------------

void writeMeta(Writer &W, const ModelFile &F) {
  W.u8(static_cast<uint8_t>(F.Lang));
  W.u8(F.UseAnalyses ? 1 : 0);
  W.u8(F.UseClassifier ? 1 : 0);
  W.u64(F.Seed);
  W.u64(F.Miner.MaxPathsPerStmt);
  W.u32(F.Miner.MinPathFrequency);
  W.u64(F.Miner.MaxConditionPaths);
  W.u32(F.Miner.MinPatternSupport);
  W.f64(F.Miner.MinSatisfactionRatio);
  W.u8(static_cast<uint8_t>(F.Miner.Conditions));
  W.u64(F.Miner.MaxPatternsPerNode);
  W.u64(F.Limits.MaxFileBytes);
  W.u64(F.Limits.MaxTokens);
  W.u64(F.Limits.MaxAstNodes);
  W.u32(F.Limits.MaxNestingDepth);
  W.u64(F.Limits.FileDeadlineMillis);
  W.str(F.GitRev);
  W.u8(F.ClassifierPresent ? 1 : 0);
}

void parseMeta(Reader &R, ModelFile &F) {
  uint8_t Lang = R.u8();
  if (Lang > static_cast<uint8_t>(corpus::Language::Java))
    fail(ModelErrorKind::Malformed,
         "unknown language " + std::to_string(Lang));
  F.Lang = static_cast<corpus::Language>(Lang);
  F.UseAnalyses = R.u8() != 0;
  F.UseClassifier = R.u8() != 0;
  F.Seed = R.u64();
  F.Miner.MaxPathsPerStmt = R.u64();
  F.Miner.MinPathFrequency = R.u32();
  F.Miner.MaxConditionPaths = R.u64();
  F.Miner.MinPatternSupport = R.u32();
  F.Miner.MinSatisfactionRatio = R.f64();
  uint8_t Policy = R.u8();
  if (Policy > static_cast<uint8_t>(MinerConfig::ConditionPolicy::AllSubsets))
    fail(ModelErrorKind::Malformed,
         "unknown condition policy " + std::to_string(Policy));
  F.Miner.Conditions = static_cast<MinerConfig::ConditionPolicy>(Policy);
  F.Miner.MaxPatternsPerNode = R.u64();
  F.Limits.MaxFileBytes = R.u64();
  F.Limits.MaxTokens = R.u64();
  F.Limits.MaxAstNodes = R.u64();
  F.Limits.MaxNestingDepth = R.u32();
  F.Limits.FileDeadlineMillis = R.u64();
  F.GitRev = R.str();
  F.ClassifierPresent = R.u8() != 0;
  R.finish();
}

void writeStrings(Writer &W, const ModelFile &F) {
  W.u32(static_cast<uint32_t>(F.Strings.size()));
  // Symbol 0 is the reserved epsilon entry; the loader reinstates it.
  for (size_t S = 1; S < F.Strings.size(); ++S)
    W.str(F.Strings[S]);
}

void parseStrings(Reader &R, ModelFile &F) {
  uint32_t Count = R.u32();
  if (Count == 0)
    fail(ModelErrorKind::Malformed, "empty interner snapshot");
  F.Strings.clear();
  F.Strings.reserve(Count);
  F.Strings.push_back("<eps>");
  for (uint32_t S = 1; S != Count; ++S)
    F.Strings.push_back(R.str());
  R.finish();
}

void writePaths(Writer &W, const ModelFile &F) {
  W.u32(static_cast<uint32_t>(F.Paths.size()));
  for (const NamePath &P : F.Paths) {
    W.u32(static_cast<uint32_t>(P.Prefix.size()));
    for (const PathStep &Step : P.Prefix) {
      W.u32(Step.Value);
      W.u32(Step.Index);
    }
    W.u32(P.End);
  }
}

void parsePaths(Reader &R, ModelFile &F) {
  uint32_t Count = R.u32();
  const uint32_t NumSymbols = static_cast<uint32_t>(F.Strings.size());
  auto CheckSymbol = [&](uint32_t S) {
    if (S >= NumSymbols)
      fail(ModelErrorKind::Malformed,
           "path symbol " + std::to_string(S) + " out of range");
    return S;
  };
  F.Paths.clear();
  F.Paths.reserve(Count);
  for (uint32_t I = 0; I != Count; ++I) {
    NamePath P;
    uint32_t Steps = R.u32();
    P.Prefix.reserve(Steps);
    for (uint32_t S = 0; S != Steps; ++S) {
      uint32_t Value = CheckSymbol(R.u32());
      uint32_t Index = R.u32();
      P.Prefix.push_back(PathStep{Value, Index});
    }
    P.End = CheckSymbol(R.u32());
    F.Paths.push_back(std::move(P));
  }
  R.finish();
}

void writePatterns(Writer &W, const ModelFile &F) {
  W.u32(static_cast<uint32_t>(F.Patterns.size()));
  for (const NamePattern &P : F.Patterns) {
    W.u8(static_cast<uint8_t>(P.Kind));
    W.u32(static_cast<uint32_t>(P.Condition.size()));
    for (PathId Id : P.Condition)
      W.u32(Id);
    W.u32(static_cast<uint32_t>(P.Deduction.size()));
    for (PathId Id : P.Deduction)
      W.u32(Id);
    W.u32(P.Support);
    W.u32(P.DatasetMatches);
    W.u32(P.DatasetSatisfactions);
    W.u32(P.DatasetViolations);
  }
}

void parsePatterns(Reader &R, ModelFile &F) {
  uint32_t Count = R.u32();
  const uint32_t NumPaths = static_cast<uint32_t>(F.Paths.size());
  auto CheckPath = [&](uint32_t Id) {
    if (Id >= NumPaths)
      fail(ModelErrorKind::Malformed,
           "pattern path id " + std::to_string(Id) + " out of range");
    return Id;
  };
  F.Patterns.clear();
  F.Patterns.reserve(Count);
  for (uint32_t I = 0; I != Count; ++I) {
    NamePattern P;
    uint8_t Kind = R.u8();
    if (Kind > static_cast<uint8_t>(PatternKind::ConfusingWord))
      fail(ModelErrorKind::Malformed,
           "unknown pattern kind " + std::to_string(Kind));
    P.Kind = static_cast<PatternKind>(Kind);
    uint32_t NCond = R.u32();
    P.Condition.reserve(NCond);
    for (uint32_t C = 0; C != NCond; ++C)
      P.Condition.push_back(CheckPath(R.u32()));
    uint32_t NDed = R.u32();
    P.Deduction.reserve(NDed);
    for (uint32_t D = 0; D != NDed; ++D)
      P.Deduction.push_back(CheckPath(R.u32()));
    P.Support = R.u32();
    P.DatasetMatches = R.u32();
    P.DatasetSatisfactions = R.u32();
    P.DatasetViolations = R.u32();
    F.Patterns.push_back(std::move(P));
  }
  R.finish();
}

void writePairs(Writer &W, const ModelFile &F) {
  W.u32(static_cast<uint32_t>(F.Pairs.size()));
  for (const ConfusingPair &P : F.Pairs) {
    W.u32(P.Mistaken);
    W.u32(P.Correct);
    W.u32(P.Count);
  }
}

void parsePairs(Reader &R, ModelFile &F) {
  uint32_t Count = R.u32();
  const uint32_t NumSymbols = static_cast<uint32_t>(F.Strings.size());
  auto CheckSymbol = [&](uint32_t S) {
    if (S >= NumSymbols)
      fail(ModelErrorKind::Malformed,
           "pair symbol " + std::to_string(S) + " out of range");
    return S;
  };
  F.Pairs.clear();
  F.Pairs.reserve(Count);
  for (uint32_t I = 0; I != Count; ++I) {
    ConfusingPair P;
    P.Mistaken = CheckSymbol(R.u32());
    P.Correct = CheckSymbol(R.u32());
    P.Count = R.u32();
    F.Pairs.push_back(P);
  }
  R.finish();
}

void writeClassifier(Writer &W, const ModelFile &F) {
  if (!F.ClassifierPresent)
    return; // empty payload
  const DefectClassifier::Snapshot &S = F.Classifier;
  W.str(S.Family);
  W.u32(static_cast<uint32_t>(S.Means.size()));
  for (double V : S.Means)
    W.f64(V);
  for (double V : S.Stddevs)
    W.f64(V);
  W.u32(static_cast<uint32_t>(S.Components.rows()));
  W.u32(static_cast<uint32_t>(S.Components.cols()));
  for (size_t R = 0; R != S.Components.rows(); ++R)
    for (size_t C = 0; C != S.Components.cols(); ++C)
      W.f64(S.Components.at(R, C));
  for (double V : S.Eigenvalues)
    W.f64(V);
  W.u32(static_cast<uint32_t>(S.Weights.size()));
  for (double V : S.Weights)
    W.f64(V);
  W.f64(S.Bias);
}

void parseClassifier(Reader &R, ModelFile &F) {
  if (!F.ClassifierPresent) {
    R.finish();
    return;
  }
  DefectClassifier::Snapshot &S = F.Classifier;
  S.Family = std::string(R.str());
  if (S.Family.empty())
    fail(ModelErrorKind::Malformed, "empty classifier family");
  uint32_t NFeat = R.u32();
  S.Means.resize(NFeat);
  for (double &V : S.Means)
    V = R.f64();
  S.Stddevs.resize(NFeat);
  for (double &V : S.Stddevs)
    V = R.f64();
  uint32_t Rows = R.u32();
  uint32_t Cols = R.u32();
  if (Cols != NFeat)
    fail(ModelErrorKind::Malformed, "PCA column count mismatch");
  S.Components = ml::Matrix(Rows, Cols);
  for (uint32_t I = 0; I != Rows; ++I)
    for (uint32_t J = 0; J != Cols; ++J)
      S.Components.at(I, J) = R.f64();
  S.Eigenvalues.resize(Rows);
  for (double &V : S.Eigenvalues)
    V = R.f64();
  uint32_t NWeights = R.u32();
  if (NWeights != Rows)
    fail(ModelErrorKind::Malformed, "classifier weight count mismatch");
  S.Weights.resize(NWeights);
  for (double &V : S.Weights)
    V = R.f64();
  S.Bias = R.f64();
  R.finish();
}

void writeFiles(Writer &W, const ModelFile &F) {
  W.u32(static_cast<uint32_t>(F.Manifest.Files.size()));
  for (const incremental::FileState &E : F.Manifest.Files) {
    W.str(E.Path);
    W.u64(E.Size);
    W.u64(E.Hash);
    W.u32(E.ParseErrors);
    W.u8(E.Quarantined ? 1 : 0);
    if (E.Quarantined) {
      W.u8(static_cast<uint8_t>(E.QuarantineKind));
      W.u64(E.QuarantineByteOffset);
      W.str(E.QuarantineDetail);
      continue;
    }
    W.u32(static_cast<uint32_t>(E.Stmts.size()));
    for (const incremental::CachedStmt &S : E.Stmts) {
      W.u32(S.Line);
      W.u64(S.TextHash);
      W.u32(static_cast<uint32_t>(S.Paths.size()));
      for (PathId Id : S.Paths)
        W.u32(Id);
    }
  }
}

void parseFiles(Reader &R, ModelFile &F) {
  uint32_t Count = R.u32();
  const uint32_t NumPaths = static_cast<uint32_t>(F.Paths.size());
  F.Manifest.clear();
  F.Manifest.Files.reserve(Count);
  for (uint32_t I = 0; I != Count; ++I) {
    incremental::FileState E;
    E.Path = std::string(R.str());
    E.Size = R.u64();
    E.Hash = R.u64();
    E.ParseErrors = R.u32();
    E.Quarantined = R.u8() != 0;
    if (E.Quarantined) {
      uint8_t Kind = R.u8();
      if (Kind >= ingest::kNumIngestErrorKinds)
        fail(ModelErrorKind::Malformed,
             "unknown quarantine kind " + std::to_string(Kind));
      E.QuarantineKind = static_cast<ingest::IngestErrorKind>(Kind);
      E.QuarantineByteOffset = R.u64();
      E.QuarantineDetail = std::string(R.str());
      F.Manifest.Files.push_back(std::move(E));
      continue;
    }
    uint32_t NStmts = R.u32();
    E.Stmts.reserve(NStmts);
    for (uint32_t S = 0; S != NStmts; ++S) {
      incremental::CachedStmt Stmt;
      Stmt.Line = R.u32();
      Stmt.TextHash = R.u64();
      uint32_t NPaths = R.u32();
      Stmt.Paths.reserve(NPaths);
      for (uint32_t P = 0; P != NPaths; ++P) {
        uint32_t Id = R.u32();
        if (Id >= NumPaths)
          fail(ModelErrorKind::Malformed,
               "cached statement path id " + std::to_string(Id) +
                   " out of range");
        Stmt.Paths.push_back(Id);
      }
      E.Stmts.push_back(std::move(Stmt));
    }
    F.Manifest.Files.push_back(std::move(E));
  }
  R.finish();
}

} // namespace

// --- serialize / parse -----------------------------------------------------

std::string model::serialize(const ModelFile &File) {
  struct Section {
    uint64_t Id;
    std::string Payload;
  };
  std::vector<Section> Sections;
  auto Emit = [&](uint64_t Id, auto &&WriteFn) {
    Section S{Id, {}};
    Writer W(S.Payload);
    WriteFn(W);
    Sections.push_back(std::move(S));
  };
  Emit(SecMeta, [&](Writer &W) { writeMeta(W, File); });
  Emit(SecStrings, [&](Writer &W) { writeStrings(W, File); });
  Emit(SecPaths, [&](Writer &W) { writePaths(W, File); });
  Emit(SecPatterns, [&](Writer &W) { writePatterns(W, File); });
  Emit(SecPairs, [&](Writer &W) { writePairs(W, File); });
  Emit(SecClassifier, [&](Writer &W) { writeClassifier(W, File); });
  Emit(SecFiles, [&](Writer &W) { writeFiles(W, File); });

  std::string Out;
  size_t Total = kHeaderBytes + Sections.size() * kTableEntryBytes;
  for (const Section &S : Sections)
    Total += S.Payload.size();
  Out.reserve(Total);

  Out.append(kMagic, sizeof(kMagic));
  // The one native-order field: detects cross-endian files on load.
  Out.append(reinterpret_cast<const char *>(&kEndianMarker),
             sizeof(kEndianMarker));
  Writer Header(Out);
  Header.u32(kSchemaVersion);
  Header.u32(static_cast<uint32_t>(Sections.size()));
  Header.u32(0); // reserved

  uint64_t Offset = kHeaderBytes + Sections.size() * kTableEntryBytes;
  {
    Writer Table(Out);
    for (const Section &S : Sections) {
      Table.u64(S.Id);
      Table.u64(Offset);
      Table.u64(S.Payload.size());
      Table.u64(hashString(S.Payload));
      Offset += S.Payload.size();
    }
  }
  for (const Section &S : Sections)
    Out += S.Payload;
  return Out;
}

ModelFile model::parse(std::string_view Data) {
  if (Data.size() < kHeaderBytes)
    fail(ModelErrorKind::Truncated,
         "file is " + std::to_string(Data.size()) + " bytes, header needs " +
             std::to_string(kHeaderBytes));
  if (Data.compare(0, sizeof(kMagic),
                   std::string_view(kMagic, sizeof(kMagic))) != 0)
    fail(ModelErrorKind::BadMagic, "not a namer model file");

  uint32_t Marker;
  std::memcpy(&Marker, Data.data() + 8, sizeof(Marker));
  if (Marker != kEndianMarker)
    fail(ModelErrorKind::BadEndian,
         "endian marker reads 0x" + [&] {
           char Buf[16];
           std::snprintf(Buf, sizeof(Buf), "%08x", Marker);
           return std::string(Buf);
         }());

  auto ReadU32 = [&](size_t At) {
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(Data[At + I]))
           << (8 * I);
    return V;
  };
  uint32_t Version = ReadU32(12);
  if (Version != kSchemaVersion)
    fail(ModelErrorKind::BadVersion,
         "schema_version " + std::to_string(Version) + ", loader supports " +
             std::to_string(kSchemaVersion));
  uint32_t NumSections = ReadU32(16);
  if (NumSections > kMaxSections)
    fail(ModelErrorKind::Malformed,
         "section count " + std::to_string(NumSections));
  // The reserved word is always written zero at schema v1; anything else
  // is header corruption (the header carries no checksum of its own).
  if (ReadU32(20) != 0)
    fail(ModelErrorKind::Malformed, "reserved header bytes are nonzero");
  size_t TableEnd = kHeaderBytes + size_t(NumSections) * kTableEntryBytes;
  if (Data.size() < TableEnd)
    fail(ModelErrorKind::Truncated, "file ends inside the section table");

  struct Entry {
    uint64_t Id, Offset, Length, Checksum;
  };
  auto ReadU64 = [&](size_t At) {
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(Data[At + I]))
           << (8 * I);
    return V;
  };
  std::vector<Entry> Table(NumSections);
  for (uint32_t I = 0; I != NumSections; ++I) {
    size_t At = kHeaderBytes + size_t(I) * kTableEntryBytes;
    Table[I] = Entry{ReadU64(At), ReadU64(At + 8), ReadU64(At + 16),
                     ReadU64(At + 24)};
    const Entry &E = Table[I];
    if (E.Offset > Data.size() || E.Length > Data.size() - E.Offset)
      fail(ModelErrorKind::Truncated,
           "section " + std::to_string(E.Id) + " extends past end of file");
  }

  // Verify every checksum before trusting any content: a bit flip anywhere
  // in a payload is caught here, not by a downstream range check.
  {
    telemetry::TraceSpan Verify("model.verify");
    for (const Entry &E : Table) {
      uint64_t Got = hashString(Data.substr(E.Offset, E.Length));
      if (Got != E.Checksum)
        fail(ModelErrorKind::BadChecksum,
             "section " + std::to_string(E.Id) + " checksum mismatch");
    }
  }

  auto Find = [&](uint64_t Id) -> const Entry * {
    for (const Entry &E : Table)
      if (E.Id == Id)
        return &E;
    return nullptr;
  };
  for (uint64_t Id : kRequiredSections)
    if (!Find(Id))
      fail(ModelErrorKind::SectionMissing,
           "section " + std::to_string(Id) + " missing");
  auto SectionReader = [&](uint64_t Id, const char *Name) {
    const Entry *E = Find(Id);
    return Reader(Data.substr(E->Offset, E->Length), Name);
  };

  ModelFile F;
  {
    Reader R = SectionReader(SecMeta, "meta");
    parseMeta(R, F);
  }
  {
    Reader R = SectionReader(SecStrings, "strings");
    parseStrings(R, F);
  }
  {
    Reader R = SectionReader(SecPaths, "paths");
    parsePaths(R, F);
  }
  {
    Reader R = SectionReader(SecPatterns, "patterns");
    parsePatterns(R, F);
  }
  {
    Reader R = SectionReader(SecPairs, "pairs");
    parsePairs(R, F);
  }
  {
    Reader R = SectionReader(SecClassifier, "classifier");
    parseClassifier(R, F);
  }
  {
    Reader R = SectionReader(SecFiles, "files");
    parseFiles(R, F);
  }
  return F;
}

// --- save / load -----------------------------------------------------------

void model::save(const std::string &Path, const ModelFile &File) {
  telemetry::TraceSpan Span("model.save");
  faultinject::ScopedKey Key(Path);
  std::string Buffer = serialize(File);

  // Injected non-Throw faults become a short write: a truncated file lands
  // on disk (so load-side robustness can be exercised against it) and the
  // caller sees the same typed error a full disk would produce. Throw-kind
  // faults propagate InjectedFault from fire() itself.
  size_t WriteBytes = Buffer.size();
  bool Injected = false;
  if (faultinject::fire("model.save")) {
    WriteBytes /= 2;
    Injected = true;
  }

  std::FILE *Out = std::fopen(Path.c_str(), "wb");
  if (!Out)
    fail(ModelErrorKind::Io, "cannot open " + Path + " for writing");
  size_t Written = std::fwrite(Buffer.data(), 1, WriteBytes, Out);
  int CloseErr = std::fclose(Out);
  if (Written != WriteBytes || CloseErr != 0)
    fail(ModelErrorKind::Io, "short write to " + Path);
  if (Injected)
    fail(ModelErrorKind::Io, "injected short write to " + Path);

  telemetry::count("model.bytes", Buffer.size());
  telemetry::count("model.sections", sizeof(kRequiredSections) /
                                         sizeof(kRequiredSections[0]));
}

ModelFile model::load(const std::string &Path, Arena &Mem) {
  telemetry::TraceSpan Span("model.load");
  faultinject::ScopedKey Key(Path);
  auto Start = std::chrono::steady_clock::now();

  std::optional<Arena::FileMapping> Mapping = Mem.mapFile(Path);
  if (!Mapping)
    fail(ModelErrorKind::Io, "cannot read " + Path);
  std::string_view Contents = Mapping->Contents;

  // Injected non-Throw faults become a short read: the image is truncated
  // so the natural Truncated / BadChecksum paths fire and the caller sees
  // a typed error, never garbage.
  if (faultinject::fire("model.load"))
    Contents = Contents.substr(0, Contents.size() / 2);

  ModelFile F = parse(Contents);

  auto End = std::chrono::steady_clock::now();
  telemetry::count(
      "model.load_us",
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
              .count()));
  telemetry::count("model.bytes", Contents.size());
  telemetry::count("model.sections", sizeof(kRequiredSections) /
                                         sizeof(kRequiredSections[0]));
  return F;
}
