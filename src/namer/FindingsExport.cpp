//===- namer/FindingsExport.cpp -------------------------------------------==//

#include "namer/FindingsExport.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <tuple>

using namespace namer;

namespace {

std::string jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string str(std::string_view S) {
  return "\"" + jsonEscape(S) + "\"";
}

/// Fixed-format double: six decimals, enough to round-trip the decision
/// values we print while staying byte-stable.
std::string num(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

const char *kindSlug(PatternKind K) {
  return K == PatternKind::Consistency ? "consistency" : "confusing-word";
}

const char *kindCamel(PatternKind K) {
  return K == PatternKind::Consistency ? "Consistency" : "ConfusingWord";
}

std::string ruleIdOf(const PatternProvenance &P) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "namer/%s/%04u", kindSlug(P.Kind),
                P.Id);
  return Buf;
}

std::string witnessCitation(const WitnessRef &W) {
  return W.File + ":" + std::to_string(W.Line) + " uses '" + W.Name + "'";
}

std::string sarifRule(const PatternProvenance &P) {
  std::string FullDesc =
      P.Kind == PatternKind::Consistency
          ? "Statements matching this pattern's condition are expected to "
            "name its two deduction positions identically; mined from the "
            "corpus FP-tree and kept by pruneUncommon."
          : "Statements matching this pattern's condition are expected to "
            "use the mined correct word at the deduction position; the "
            "word pair comes from commit-history rename mining.";
  std::string Out = "        {\n";
  Out += "          \"fullDescription\": {\"text\": " + str(FullDesc) +
         "},\n";
  Out += "          \"help\": {\"text\": " + str(P.Rendered) + "},\n";
  Out += "          \"id\": " + str(ruleIdOf(P)) + ",\n";
  Out += "          \"name\": " + str(std::string(kindCamel(P.Kind)) +
                                      "Pattern" + std::to_string(P.Id)) +
         ",\n";
  Out += "          \"properties\": {\"confidence\": " +
         num(P.SatisfactionRate) +
         ", \"datasetMatches\": " + std::to_string(P.DatasetMatches) +
         ", \"datasetSatisfactions\": " +
         std::to_string(P.DatasetSatisfactions) +
         ", \"datasetViolations\": " + std::to_string(P.DatasetViolations) +
         ", \"support\": " + std::to_string(P.Support) + "},\n";
  Out += "          \"shortDescription\": {\"text\": " +
         str(std::string(kindSlug(P.Kind)) + " naming pattern #" +
             std::to_string(P.Id)) +
         "}\n";
  Out += "        }";
  return Out;
}

std::string sarifResult(const Explanation &E, size_t RuleIndex) {
  std::string Out = "        {\n";
  Out += "          \"level\": \"warning\",\n";
  Out += "          \"locations\": [{\"physicalLocation\": "
         "{\"artifactLocation\": {\"uri\": " +
         str(E.R.File) + "}, \"region\": {\"startLine\": " +
         std::to_string(E.R.Line) + "}}}],\n";
  Out += "          \"message\": {\"text\": " +
         str("'" + E.R.Original + "' is suspicious here; suggested fix: '" +
             E.R.Suggested + "' [" + kindSlug(E.Pattern.Kind) + "]") +
         "},\n";
  Out += "          \"properties\": {\"confidence\": " + num(E.R.Confidence) +
         ", \"original\": " + str(E.R.Original) +
         ", \"suggested\": " + str(E.R.Suggested) + ", \"witnesses\": [";
  for (size_t I = 0; I != E.Witnesses.size(); ++I)
    Out += std::string(I ? ", " : "") + str(witnessCitation(E.Witnesses[I]));
  Out += "]},\n";
  Out += "          \"ruleId\": " + str(ruleIdOf(E.Pattern)) + ",\n";
  Out += "          \"ruleIndex\": " + std::to_string(RuleIndex) + "\n";
  Out += "        }";
  return Out;
}

std::string findingJson(const Explanation &E) {
  std::string Out = "    {\n";
  if (E.Attribution.Present) {
    Out += "      \"classifier\": {\n";
    Out += "        \"bias\": " + num(E.Attribution.Bias) + ",\n";
    Out += "        \"contributions\": [\n";
    for (size_t I = 0; I != E.Attribution.Contributions.size(); ++I) {
      const FeatureContribution &C = E.Attribution.Contributions[I];
      Out += "          {\"contribution\": " + num(C.Contribution) +
             ", \"feature\": " + str(C.Feature) +
             ", \"standardized\": " + num(C.Standardized) +
             ", \"value\": " + num(C.Value) +
             ", \"weight\": " + num(C.Weight) + "}" +
             (I + 1 != E.Attribution.Contributions.size() ? ",\n" : "\n");
    }
    Out += "        ],\n";
    Out += "        \"decision\": " + num(E.Attribution.Decision) + ",\n";
    Out += "        \"model\": " + str(E.Attribution.Model) + "\n";
    Out += "      },\n";
  } else {
    Out += "      \"classifier\": null,\n";
  }
  Out += "      \"confidence\": " + num(E.R.Confidence) + ",\n";
  Out += "      \"file\": " + str(E.R.File) + ",\n";
  Out += "      \"kind\": " + str(kindSlug(E.Pattern.Kind)) + ",\n";
  Out += "      \"line\": " + std::to_string(E.R.Line) + ",\n";
  Out += "      \"original\": " + str(E.R.Original) + ",\n";
  Out += "      \"pattern\": {\"condition_size\": " +
         std::to_string(E.Pattern.ConditionSize) +
         ", \"dataset_matches\": " + std::to_string(E.Pattern.DatasetMatches) +
         ", \"dataset_satisfactions\": " +
         std::to_string(E.Pattern.DatasetSatisfactions) +
         ", \"dataset_violations\": " +
         std::to_string(E.Pattern.DatasetViolations) +
         ", \"id\": " + std::to_string(E.Pattern.Id) +
         ", \"satisfaction_rate\": " + num(E.Pattern.SatisfactionRate) +
         ", \"support\": " + std::to_string(E.Pattern.Support) + "},\n";
  Out += "      \"suggested\": " + str(E.R.Suggested) + ",\n";
  Out += "      \"witnesses\": [";
  for (size_t I = 0; I != E.Witnesses.size(); ++I) {
    const WitnessRef &W = E.Witnesses[I];
    Out += std::string(I ? ", " : "") + "{\"file\": " + str(W.File) +
           ", \"line\": " + std::to_string(W.Line) +
           ", \"name\": " + str(W.Name) + ", \"path\": " + str(W.PathText) +
           "}";
  }
  Out += "],\n";
  if (E.WordPair.Present)
    Out += "      \"word_pair\": {\"commit_count\": " +
           std::to_string(E.WordPair.CommitCount) +
           ", \"correct\": " + str(E.WordPair.Correct) +
           ", \"mistaken\": " + str(E.WordPair.Mistaken) + "}\n";
  else
    Out += "      \"word_pair\": null\n";
  Out += "    }";
  return Out;
}

} // namespace

bool namer::reportOrderLess(const Report &A, const Report &B) {
  return std::tie(A.File, A.Line, A.Original, A.Suggested, A.Kind) <
         std::tie(B.File, B.Line, B.Original, B.Suggested, B.Kind);
}

void namer::sortExplanations(std::vector<Explanation> &Findings) {
  std::sort(Findings.begin(), Findings.end(),
            [](const Explanation &A, const Explanation &B) {
              return reportOrderLess(A.R, B.R);
            });
}

std::string namer::sarifJson(const std::vector<Explanation> &Findings,
                             const ExportMeta &Meta) {
  telemetry::TraceSpan Span("report.export");

  // Rules: one per distinct violated pattern, ordered by pattern id (a
  // deterministic total order independent of finding order).
  std::map<PatternId, const PatternProvenance *> Rules;
  for (const Explanation &E : Findings)
    Rules.emplace(E.Pattern.Id, &E.Pattern);
  std::map<PatternId, size_t> RuleIndex;
  for (const auto &[Id, P] : Rules) {
    (void)P;
    size_t Next = RuleIndex.size();
    RuleIndex[Id] = Next;
  }

  std::string Out = "{\n";
  Out += "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  Out += "  \"runs\": [\n    {\n";
  Out += "      \"results\": [\n";
  for (size_t I = 0; I != Findings.size(); ++I)
    Out += sarifResult(Findings[I], RuleIndex[Findings[I].Pattern.Id]) +
           (I + 1 != Findings.size() ? ",\n" : "\n");
  Out += "      ],\n";
  Out += "      \"tool\": {\n        \"driver\": {\n";
  Out += "          \"informationUri\": "
         "\"https://doi.org/10.1145/3453483.3454045\",\n";
  Out += "          \"name\": " + str(Meta.Tool) + ",\n";
  Out += "          \"rules\": [\n";
  {
    size_t I = 0;
    for (const auto &[Id, P] : Rules) {
      (void)Id;
      // sarifRule indents at the results level; shift two deeper.
      std::string Rule = sarifRule(*P);
      std::string Indented;
      size_t Start = 0;
      while (Start < Rule.size()) {
        size_t End = Rule.find('\n', Start);
        if (End == std::string::npos)
          End = Rule.size();
        Indented += "    ";
        Indented.append(Rule, Start, End - Start);
        if (End != Rule.size())
          Indented += '\n';
        Start = End + 1;
      }
      Out += Indented + (++I != Rules.size() ? ",\n" : "\n");
    }
  }
  Out += "          ],\n";
  Out += "          \"version\": " + str(Meta.ToolVersion) + "\n";
  Out += "        }\n      }\n    }\n  ],\n";
  Out += "  \"version\": \"2.1.0\"\n";
  Out += "}\n";

  telemetry::count("report.sarif_bytes", Out.size());
  telemetry::count("report.sarif_results", Findings.size());
  return Out;
}

std::string namer::findingsJson(const std::vector<Explanation> &Findings,
                                const ExportMeta &Meta) {
  telemetry::TraceSpan Span("report.export");
  std::string Out = "{\n";
  Out += "  \"meta\": {\n";
  Out += "    \"config\": {\"lang\": " + str(Meta.Lang) +
         ", \"max_reports\": " + std::to_string(Meta.MaxReports) +
         ", \"use_classifier\": " +
         (Meta.UseClassifier ? "true" : "false") + "},\n";
  Out += "    \"git_rev\": " + str(Meta.GitRev) + ",\n";
  Out += "    \"quarantined_files\": " +
         std::to_string(Meta.QuarantinedFiles) + ",\n";
  Out += "    \"schema_version\": " + std::to_string(kFindingsSchemaVersion) +
         ",\n";
  Out += "    \"tool\": " + str(Meta.Tool) + ",\n";
  Out += "    \"tool_version\": " + str(Meta.ToolVersion) + "\n";
  Out += "  },\n";
  Out += "  \"findings\": [\n";
  for (size_t I = 0; I != Findings.size(); ++I)
    Out += findingJson(Findings[I]) +
           (I + 1 != Findings.size() ? ",\n" : "\n");
  Out += "  ]\n";
  Out += "}\n";

  telemetry::count("report.findings_bytes", Out.size());
  telemetry::count("report.findings_results", Findings.size());
  return Out;
}
