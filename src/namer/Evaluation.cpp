//===- namer/Evaluation.cpp -----------------------------------------------==//

#include "namer/Evaluation.h"

#include "support/Rng.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

using namespace namer;
using corpus::InspectionOutcome;

size_t EvaluationResult::numSemantic() const {
  size_t N = 0;
  for (const InspectedReport &R : Reports)
    N += R.Outcome.Result == InspectionOutcome::Verdict::SemanticDefect;
  return N;
}

size_t EvaluationResult::numQuality() const {
  size_t N = 0;
  for (const InspectedReport &R : Reports)
    N += R.Outcome.Result == InspectionOutcome::Verdict::CodeQualityIssue;
  return N;
}

size_t EvaluationResult::numFalsePositives() const {
  size_t N = 0;
  for (const InspectedReport &R : Reports)
    N += R.Outcome.Result == InspectionOutcome::Verdict::FalsePositive;
  return N;
}

double EvaluationResult::precision() const {
  if (Reports.empty())
    return 0.0;
  return static_cast<double>(Reports.size() - numFalsePositives()) /
         static_cast<double>(Reports.size());
}

std::map<corpus::IssueCategory, size_t>
EvaluationResult::qualityBreakdown() const {
  std::map<corpus::IssueCategory, size_t> Out;
  for (const InspectedReport &R : Reports)
    if (R.Outcome.Result == InspectionOutcome::Verdict::CodeQualityIssue)
      ++Out[R.Outcome.Category];
  return Out;
}

namespace {

InspectionOutcome inspectViolation(const NamerPipeline &Pipeline,
                                   const corpus::InspectionOracle &Oracle,
                                   const Violation &V) {
  Report R = Pipeline.makeReport(V);
  return Oracle.inspect(R.File, R.Line, R.Original, R.Suggested);
}

} // namespace

void namer::collectBalancedLabels(const NamerPipeline &Pipeline,
                                  const corpus::InspectionOracle &Oracle,
                                  size_t Target, uint64_t Seed,
                                  std::vector<size_t> &Indices,
                                  std::vector<bool> &Labels) {
  const auto &Violations = Pipeline.violations();
  std::vector<size_t> Order(Violations.size());
  std::iota(Order.begin(), Order.end(), 0);
  Rng R(Seed);
  R.shuffle(Order);

  size_t WantTrue = Target / 2, WantFalse = Target - Target / 2;
  for (size_t Idx : Order) {
    if (WantTrue == 0 && WantFalse == 0)
      break;
    InspectionOutcome Out =
        inspectViolation(Pipeline, Oracle, Violations[Idx]);
    bool IsTrue = Out.Result != InspectionOutcome::Verdict::FalsePositive;
    if (IsTrue && WantTrue > 0) {
      Indices.push_back(Idx);
      Labels.push_back(true);
      --WantTrue;
    } else if (!IsTrue && WantFalse > 0) {
      Indices.push_back(Idx);
      Labels.push_back(false);
      --WantFalse;
    }
  }
}

EvaluationResult namer::evaluatePipeline(
    NamerPipeline &Pipeline, const corpus::InspectionOracle &Oracle,
    const EvaluationConfig &Config) {
  EvaluationResult Result;
  const auto &Violations = Pipeline.violations();
  if (Violations.empty())
    return Result;

  // Step 1-2: balanced labels + training (only in classifier mode; the
  // labels are still collected so the evaluation pool is identical across
  // ablations).
  std::vector<size_t> LabeledIdx;
  std::vector<bool> Labels;
  collectBalancedLabels(Pipeline, Oracle, Config.NumLabeled, Config.Seed,
                        LabeledIdx, Labels);
  const PipelineConfig &PC = Pipeline.config();
  if (PC.UseClassifier && !LabeledIdx.empty()) {
    std::vector<Violation> Labeled;
    for (size_t Idx : LabeledIdx)
      Labeled.push_back(Violations[Idx]);
    Result.TrainingMetrics = Pipeline.trainClassifier(Labeled, Labels);
    Result.SelectedModel = Pipeline.classifier().selectedFamily();
  }

  // Step 3: sample violations outside the training set.
  std::unordered_set<size_t> Used(LabeledIdx.begin(), LabeledIdx.end());
  std::vector<size_t> Pool;
  for (size_t I = 0; I != Violations.size(); ++I)
    if (!Used.count(I))
      Pool.push_back(I);
  Rng R(Config.Seed ^ 0x5eedf00dULL);
  R.shuffle(Pool);
  if (Pool.size() > Config.NumEvaluated)
    Pool.resize(Config.NumEvaluated);
  Result.ViolationsEvaluated = Pool.size();

  // Step 4: classify and inspect.
  for (size_t Idx : Pool) {
    const Violation &V = Violations[Idx];
    if (PC.UseClassifier && !Pipeline.classify(V))
      continue;
    InspectedReport IR;
    IR.R = Pipeline.makeReport(V);
    IR.Outcome = Oracle.inspect(IR.R.File, IR.R.Line, IR.R.Original,
                                IR.R.Suggested);
    Result.Reports.push_back(std::move(IR));
  }
  return Result;
}
