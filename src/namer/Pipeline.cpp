//===- namer/Pipeline.cpp -------------------------------------------------==//

#include "namer/Pipeline.h"

#include "ast/Statements.h"
#include "frontend/java/JavaParser.h"
#include "frontend/python/PythonParser.h"
#include "pattern/PatternIndex.h"
#include "support/Hashing.h"
#include "transform/AstPlus.h"

#include <cassert>
#include <chrono>
#include <unordered_set>

using namespace namer;

NamerPipeline::NamerPipeline(PipelineConfig Config)
    : Config(std::move(Config)), Ctx(std::make_unique<AstContext>()),
      Pairs(std::make_unique<ConfusingPairMiner>(*Ctx)),
      Classifier(this->Config.Classifier) {}

void NamerPipeline::ingestFile(const corpus::SourceFile &File, RepoId Repo,
                               corpus::Language Lang) {
  auto Start = std::chrono::steady_clock::now();

  Tree Module(*Ctx);
  size_t Errors = 0;
  if (Lang == corpus::Language::Python) {
    auto R = python::parsePython(File.Text, *Ctx);
    Module = std::move(R.Module);
    Errors = R.Errors.size();
  } else {
    auto R = java::parseJava(File.Text, *Ctx);
    Module = std::move(R.Module);
    Errors = R.Errors.size();
  }
  ParseErrors += Errors;

  OriginMap Origins;
  if (Config.UseAnalyses)
    Origins = computeOrigins(Module, Registry, Config.Analysis).Origins;
  transformToAstPlus(Module, Origins);

  FileId FId = static_cast<FileId>(FilePaths.size());
  FilePaths.push_back(File.Path);
  for (NodeId Root : collectStatementRoots(Module)) {
    NodeKind Kind = Module.node(Root).Kind;
    // Definition headers contribute paths through their signature only;
    // classes add little and blow up statement counts, so skip them.
    if (Kind == NodeKind::ClassDef)
      continue;
    Tree Stmt = projectStatement(Module, Root);
    StmtRecord Record;
    Record.File = FId;
    Record.Repo = Repo;
    Record.Line = Module.node(Root).Line;
    Record.TextHash = hashString(Stmt.dump());
    Record.Paths = StmtPaths::fromTree(Stmt, Table);
    if (Record.Paths.Paths.empty())
      continue;
    Statements.push_back(std::move(Record));
  }

  auto End = std::chrono::steady_clock::now();
  TotalBuildMillis +=
      std::chrono::duration<double, std::milli>(End - Start).count();
}

void NamerPipeline::build(const corpus::Corpus &C) {
  assert(Statements.empty() && "build() must be called once");
  Registry = C.Lang == corpus::Language::Python
                 ? WellKnownRegistry::forPython()
                 : WellKnownRegistry::forJava();

  // Phase 1: ingest all files.
  NumRepos = C.Repos.size();
  for (RepoId R = 0; R != C.Repos.size(); ++R)
    for (const corpus::SourceFile &File : C.Repos[R].Files)
      ingestFile(File, R, C.Lang);

  // Phase 2: confusing word pairs from the commit history.
  for (const corpus::CommitPair &Commit : C.Commits) {
    Tree Before(*Ctx), After(*Ctx);
    if (C.Lang == corpus::Language::Python) {
      Before = std::move(python::parsePython(Commit.Before, *Ctx).Module);
      After = std::move(python::parsePython(Commit.After, *Ctx).Module);
    } else {
      Before = std::move(java::parseJava(Commit.Before, *Ctx).Module);
      After = std::move(java::parseJava(Commit.After, *Ctx).Module);
    }
    Pairs->addCommit(Before, After);
  }

  // Phase 3: mine both pattern kinds (Algorithm 1).
  std::vector<StmtPaths> AllPaths;
  AllPaths.reserve(Statements.size());
  for (const StmtRecord &S : Statements)
    AllPaths.push_back(S.Paths);

  PatternMiner Consistency(PatternKind::Consistency, Table, *Ctx,
                           Config.Miner);
  PatternMiner Confusing(PatternKind::ConfusingWord, Table, *Ctx,
                         Config.Miner);
  Confusing.setCorrectWords(Pairs->correctWords());
  for (const StmtPaths &S : AllPaths) {
    Consistency.countPaths(S);
    Confusing.countPaths(S);
  }
  for (const StmtPaths &S : AllPaths) {
    Consistency.addStatement(S);
    Confusing.addStatement(S);
  }
  Patterns = Consistency.pruneUncommon(Consistency.generate(), AllPaths);
  for (NamePattern &P :
       Confusing.pruneUncommon(Confusing.generate(), AllPaths))
    Patterns.push_back(std::move(P));

  // Phase 4: evaluate every statement, accumulate multi-level statistics,
  // and collect violations.
  PatternIndex Index2(Patterns, Table);
  std::vector<PatternHit> Hits;
  std::unordered_set<FileId> ViolatingFiles;
  std::unordered_set<RepoId> ViolatingRepos;
  for (StmtId S = 0; S != Statements.size(); ++S) {
    Hits.clear();
    Index2.evaluate(Statements[S].Paths, Hits);
    Index.addStatement(Statements[S], Hits);
    // Several mined patterns (condition variants of the same idiom) can
    // flag the same fix; keep one violation per (statement, fix) pair.
    std::unordered_set<uint64_t> SeenFixes;
    for (const PatternHit &Hit : Hits) {
      if (Hit.Result != MatchResult::Violated)
        continue;
      SuggestedFix Fix =
          deriveFix(Patterns[Hit.Pattern], Statements[S].Paths, Table);
      uint64_t Key = (static_cast<uint64_t>(Fix.Prefix) << 32) ^
                     (static_cast<uint64_t>(Fix.Suggested) << 8) ^
                     static_cast<uint64_t>(Patterns[Hit.Pattern].Kind);
      if (!SeenFixes.insert(Key).second)
        continue;
      Violations.push_back(Violation{S, Hit.Pattern});
      ViolatingFiles.insert(Statements[S].File);
      ViolatingRepos.insert(Statements[S].Repo);
    }
  }
  FilesWithViolations = ViolatingFiles.size();
  ReposWithViolations = ViolatingRepos.size();
}

std::vector<double> NamerPipeline::features(const Violation &V) const {
  FeatureInputs Inputs{Table, *Ctx, Index, Patterns, *Pairs};
  return extractViolationFeatures(V, Statements[V.Stmt], Inputs);
}

ml::Metrics
NamerPipeline::trainClassifier(const std::vector<Violation> &Labeled,
                               const std::vector<bool> &Labels) {
  std::vector<std::vector<double>> Features;
  Features.reserve(Labeled.size());
  for (const Violation &V : Labeled)
    Features.push_back(features(V));
  ml::Metrics M = Classifier.train(Features, Labels);
  Trained = true;
  return M;
}

bool NamerPipeline::classify(const Violation &V) const {
  assert(Trained && "trainClassifier must run before classify");
  return Classifier.predict(features(V));
}

double NamerPipeline::decision(const Violation &V) const {
  assert(Trained && "trainClassifier must run before decision");
  return Classifier.decision(features(V));
}

Report NamerPipeline::makeReport(const Violation &V) const {
  const StmtRecord &Stmt = Statements[V.Stmt];
  SuggestedFix Fix = deriveFix(Patterns[V.Pattern], Stmt.Paths, Table);
  Report R;
  R.File = FilePaths[Stmt.File];
  R.Line = Stmt.Line;
  R.Original = std::string(Ctx->text(Fix.Original));
  R.Suggested = std::string(Ctx->text(Fix.Suggested));
  R.Kind = Patterns[V.Pattern].Kind;
  R.Stmt = V.Stmt;
  if (Trained)
    R.Confidence = decision(V);
  return R;
}
