//===- namer/Pipeline.cpp -------------------------------------------------==//

#include "namer/Pipeline.h"

#include "ast/Statements.h"
#include "frontend/java/JavaParser.h"
#include "frontend/python/PythonParser.h"
#include "namer/ModelStore.h"
#include "pattern/PatternIndex.h"
#include "support/Arena.h"
#include "support/Cancellation.h"
#include "support/FaultInjector.h"
#include "support/Hashing.h"
#include "support/MemoryTracker.h"
#include "support/RunLedger.h"
#include "support/Telemetry.h"
#include "transform/AstPlus.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <optional>
#include <unordered_set>

using namespace namer;

NamerPipeline::NamerPipeline(PipelineConfig Config)
    : Config(std::move(Config)), Ctx(std::make_unique<AstContext>()),
      Pool(std::make_unique<ThreadPool>(this->Config.Threads)),
      Pairs(std::make_unique<ConfusingPairMiner>(*Ctx)),
      Classifier(this->Config.Classifier) {}

namespace {

/// One statement extracted by a worker, in worker-local symbols. Only the
/// name paths carry symbols; the text hash is computed from the dump and
/// is interner-independent.
struct PreStmt {
  uint32_t Line = 0;
  uint64_t TextHash = 0;
  std::vector<NamePath> Paths;
};

/// Per-file result of the parallel ingest stage. LocalCtx owns the interner
/// the path symbols refer to; it is kept alive until the sequential commit
/// translates them into the pipeline's global interner. A set Quarantine
/// means the file was skipped: no statements, no FileId.
struct FileIngest {
  std::unique_ptr<AstContext> LocalCtx;
  std::vector<PreStmt> Stmts;
  size_t Errors = 0;
  double Millis = 0.0;
  std::optional<ingest::QuarantineRecord> Quarantine;
};

Tree parseInto(std::string_view Text, corpus::Language Lang,
               AstContext &Ctx) {
  if (Lang == corpus::Language::Python)
    return std::move(python::parsePython(Text, Ctx).Module);
  return std::move(java::parseJava(Text, Ctx).Module);
}

/// Parse metadata the resource guards key on, with the module tree.
struct ParsedModule {
  Tree Module;
  size_t Errors = 0;
  size_t NumTokens = 0;
  bool DepthExceeded = false;
};

ParsedModule parseModule(std::string_view Text, corpus::Language Lang,
                         AstContext &Ctx, unsigned MaxNestingDepth) {
  if (Lang == corpus::Language::Python) {
    python::ParseOptions Opts;
    Opts.MaxNestingDepth = MaxNestingDepth;
    auto R = python::parsePython(Text, Ctx, Opts);
    return ParsedModule{std::move(R.Module), R.Errors.size(), R.NumTokens,
                        R.DepthExceeded};
  }
  java::ParseOptions Opts;
  Opts.MaxNestingDepth = MaxNestingDepth;
  auto R = java::parseJava(Text, Ctx, Opts);
  return ParsedModule{std::move(R.Module), R.Errors.size(), R.NumTokens,
                      R.DepthExceeded};
}

/// The per-file hot path: parse, Section 4.1 analyses, AST+ transform,
/// statement projection, name-path extraction. Pure aside from its own
/// local context, so files ingest in parallel. Resource guards run between
/// phases; an over-budget file comes back quarantined instead of ingested.
FileIngest ingestOneFile(const corpus::SourceFile &File,
                         corpus::Language Lang,
                         const WellKnownRegistry &Registry,
                         const PipelineConfig &Config) {
  telemetry::TraceSpan FileSpan("ingest.file");
  // Per-file latency histogram (`ingest.file_us` quantiles feed the SLO
  // exposition). Stamped through the injectable telemetry clock, unlike
  // the steady_clock deadline below, so deterministic-observability runs
  // record identical values.
  uint64_t HistStartNs = telemetry::nowNanos();
  auto Start = std::chrono::steady_clock::now();
  const ingest::IngestLimits &Limits = Config.Limits;
  FileIngest Out;

  auto Elapsed = [&Start] {
    auto Now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(Now - Start).count();
  };
  auto Quarantined = [&](ingest::IngestErrorKind Kind, size_t ByteOffset,
                         std::string Detail) {
    Out.Quarantine = ingest::QuarantineRecord{File.Path, Kind, ByteOffset,
                                              std::move(Detail)};
    Out.LocalCtx.reset();
    Out.Stmts.clear();
    Out.Millis = Elapsed();
    telemetry::histogramRecord(
        "ingest.file_us", (telemetry::nowNanos() - HistStartNs) / 1000);
    return std::move(Out);
  };
  auto OverDeadline = [&] {
    return Limits.FileDeadlineMillis != 0 &&
           Elapsed() > static_cast<double>(Limits.FileDeadlineMillis);
  };

  // Injected faults at this site map onto the budget/deadline error paths;
  // Throw-kind faults propagate to the worker's catch clause instead.
  if (auto Kind = faultinject::fire("pipeline.ingest")) {
    if (*Kind == faultinject::FaultKind::Timeout)
      return Quarantined(ingest::IngestErrorKind::Deadline, 0, "injected");
    return Quarantined(ingest::IngestErrorKind::NodeBudget, 0, "injected");
  }

  // Cancellation checkpoints bracket each per-file phase: a cancelled scan
  // request (see support/Cancellation.h) abandons the file between phases,
  // and the typed CancelledError is rethrown -- not quarantined -- by the
  // ingest worker so the whole request unwinds.
  cancel::checkpoint();
  std::string_view Contents = File.contents();
  if (Contents.size() > Limits.MaxFileBytes)
    return Quarantined(ingest::IngestErrorKind::FileTooLarge,
                       Limits.MaxFileBytes,
                       std::to_string(Contents.size()) + " bytes");

  Out.LocalCtx = std::make_unique<AstContext>();
  ParsedModule Parsed =
      parseModule(Contents, Lang, *Out.LocalCtx, Limits.MaxNestingDepth);
  Out.Errors = Parsed.Errors;
  if (Parsed.NumTokens > Limits.MaxTokens)
    return Quarantined(ingest::IngestErrorKind::TokenBudget, 0,
                       std::to_string(Parsed.NumTokens) + " tokens");
  if (Parsed.DepthExceeded)
    return Quarantined(ingest::IngestErrorKind::DepthBudget, 0,
                       "nesting deeper than " +
                           std::to_string(Limits.MaxNestingDepth));
  if (Parsed.Module.size() > Limits.MaxAstNodes)
    return Quarantined(ingest::IngestErrorKind::NodeBudget, 0,
                       std::to_string(Parsed.Module.size()) + " AST nodes");
  if (OverDeadline())
    return Quarantined(ingest::IngestErrorKind::Deadline, 0,
                       "parse exceeded " +
                           std::to_string(Limits.FileDeadlineMillis) + " ms");

  Tree Module = std::move(Parsed.Module);

  cancel::checkpoint();
  OriginMap Origins;
  if (Config.UseAnalyses)
    Origins = computeOrigins(Module, Registry, Config.Analysis).Origins;
  transformToAstPlus(Module, Origins);
  if (OverDeadline())
    return Quarantined(ingest::IngestErrorKind::Deadline, 0,
                       "analyses exceeded " +
                           std::to_string(Limits.FileDeadlineMillis) + " ms");

  cancel::checkpoint();
  telemetry::TraceSpan PathSpan("namepath.extract");
  for (NodeId Root : collectStatementRoots(Module)) {
    NodeKind Kind = Module.node(Root).Kind;
    // Definition headers contribute paths through their signature only;
    // classes add little and blow up statement counts, so skip them.
    if (Kind == NodeKind::ClassDef)
      continue;
    Tree Stmt = projectStatement(Module, Root);
    PreStmt Record;
    Record.Line = Module.node(Root).Line;
    Record.TextHash = hashString(Stmt.dump());
    // Same truncation StmtPaths::fromTree applies (Section 5.1: first 10).
    Record.Paths = extractNamePaths(Stmt, /*MaxPaths=*/10);
    if (Record.Paths.empty())
      continue;
    Out.Stmts.push_back(std::move(Record));
  }

  auto End = std::chrono::steady_clock::now();
  Out.Millis =
      std::chrono::duration<double, std::milli>(End - Start).count();
  telemetry::histogramRecord("ingest.file_us",
                             (telemetry::nowNanos() - HistStartNs) / 1000);
  return Out;
}

/// Rewrites worker-local symbols to global ones via a lazily-filled remap
/// table. Interning order (and therefore every global symbol id) is fixed
/// by the deterministic traversal order of the commit step, not by worker
/// scheduling.
class SymbolTranslator {
public:
  /// \p Batch is the commit loop's handle over the global interner: every
  /// file's translator shares it, so symbols recurring across files are
  /// lock-free cache hits after the first file interns them.
  SymbolTranslator(const AstContext &Local,
                   StringInterner::BatchHandle &Batch)
      : Local(Local), Batch(Batch),
        Remap(Local.strings().size(), NoMapping) {}

  Symbol operator()(Symbol LocalSym) {
    Symbol &G = Remap[LocalSym];
    if (G == NoMapping)
      G = Batch.intern(Local.text(LocalSym));
    return G;
  }

  void translate(NamePath &Path) {
    for (PathStep &Step : Path.Prefix)
      Step.Value = (*this)(Step.Value);
    Path.End = (*this)(Path.End);
  }

private:
  static constexpr Symbol NoMapping = static_cast<Symbol>(-1);
  const AstContext &Local;
  StringInterner::BatchHandle &Batch;
  std::vector<Symbol> Remap;
};

/// RAII "phase" ledger record: one append on destruction carrying the
/// phase's duration and peak-RSS growth. No-op when no ledger is attached.
/// Durations come from the injectable telemetry clock and RSS from the
/// injectable memory source, so --deterministic-obs runs produce
/// byte-stable records.
class LedgerPhase {
public:
  LedgerPhase(ledger::RunLedger *L, const char *Name) : L(L), Name(Name) {
    if (!L)
      return;
    StartNs = telemetry::nowNanos();
    StartPeakKb = memory::peakRssKb();
  }
  ~LedgerPhase() {
    if (!L)
      return;
    ledger::Record R;
    R.Event = "phase";
    R.Name = Name;
    R.DurationUs = (telemetry::nowNanos() - StartNs) / 1000;
    R.RssDeltaKb = static_cast<int64_t>(memory::peakRssKb()) -
                   static_cast<int64_t>(StartPeakKb);
    L->append(R);
  }
  LedgerPhase(const LedgerPhase &) = delete;
  LedgerPhase &operator=(const LedgerPhase &) = delete;

private:
  ledger::RunLedger *L;
  const char *Name;
  uint64_t StartNs = 0;
  uint64_t StartPeakKb = 0;
};

} // namespace

uint64_t namer::pipelineConfigHash(const PipelineConfig &Config) {
  uint64_t H = FnvOffsetBasis;
  H = hashByte(H, Config.UseAnalyses ? 1 : 0);
  H = hashByte(H, Config.UseClassifier ? 1 : 0);
  H = hashU64(H, Config.Seed);
  const MinerConfig &M = Config.Miner;
  H = hashU64(H, M.MaxPathsPerStmt);
  H = hashU32(H, M.MinPathFrequency);
  H = hashU64(H, M.MaxConditionPaths);
  H = hashU32(H, M.MinPatternSupport);
  H = hashU64(H, std::bit_cast<uint64_t>(M.MinSatisfactionRatio));
  H = hashByte(H, static_cast<uint8_t>(M.Conditions));
  H = hashU64(H, M.MaxPatternsPerNode);
  const ingest::IngestLimits &L = Config.Limits;
  H = hashU64(H, L.MaxFileBytes);
  H = hashU64(H, L.MaxTokens);
  H = hashU64(H, L.MaxAstNodes);
  H = hashU32(H, L.MaxNestingDepth);
  H = hashU64(H, L.FileDeadlineMillis);
  return H;
}

void NamerPipeline::samplePhaseMemory() const {
  memory::sampleGauges();
  telemetry::gaugeSet("mem.interner_bytes",
                      static_cast<int64_t>(Ctx->strings().bytesUsed()));
}

void NamerPipeline::build(const corpus::Corpus &C) {
  assert(Statements.empty() && "build() must be called once");
  telemetry::TraceSpan BuildSpan("pipeline.build");
  auto WallStart = std::chrono::steady_clock::now();

  ingestCorpus(C, /*Plan=*/nullptr);
  mineModel(C);
  scanStatements();

  auto WallEnd = std::chrono::steady_clock::now();
  BuildWallMillis =
      std::chrono::duration<double, std::milli>(WallEnd - WallStart).count();
}

void NamerPipeline::ingestCorpus(const corpus::Corpus &C,
                                 const incremental::ScanPlan *Plan) {
  Lang = C.Lang;
  Registry = C.Lang == corpus::Language::Python
                 ? WellKnownRegistry::forPython()
                 : WellKnownRegistry::forJava();

  // Phase 1: ingest files -- parallel per-file compute against
  // worker-local interners, then a sequential commit in corpus order so
  // global symbol/path ids are identical at every thread count. With a
  // scan plan, unchanged files skip the parallel stage entirely and replay
  // their cached statements (already global ids) during the commit.
  NumRepos = C.Repos.size();
  std::vector<const corpus::SourceFile *> Files;
  std::vector<RepoId> FileRepo;
  for (RepoId R = 0; R != C.Repos.size(); ++R)
    for (const corpus::SourceFile &File : C.Repos[R].Files) {
      Files.push_back(&File);
      FileRepo.push_back(R);
    }
  assert(!Plan || Plan->Entries.size() == Files.size());

  std::vector<size_t> Work;
  Work.reserve(Files.size());
  for (size_t I = 0; I != Files.size(); ++I)
    if (!Plan ||
        Plan->Entries[I].Change != incremental::FileChange::Unchanged)
      Work.push_back(I);

  std::vector<FileIngest> Ingested(Files.size());
  std::vector<uint64_t> Sizes(Files.size(), 0), Hashes(Files.size(), 0);
  {
    telemetry::TraceSpan Span("pipeline.ingest");
    LedgerPhase Phase(Ledger, "pipeline.ingest");
    Pool->parallelFor(0, Work.size(), [&](size_t W) {
      size_t I = Work[W];
      // Exceptions must not escape the worker body: parallelFor would
      // rethrow the first one and abort the whole build. Catch here and
      // attribute the failure to the owning file instead.
      faultinject::ScopedKey Key(Files[I]->Path);
      std::string_view Contents = Files[I]->contents();
      Sizes[I] = Contents.size();
      Hashes[I] = incremental::contentHash(Contents);
      try {
        Ingested[I] = ingestOneFile(*Files[I], C.Lang, Registry, Config);
      } catch (const cancel::CancelledError &) {
        // Request cancellation is not a per-file failure: rethrow so
        // parallelFor surfaces the typed error to the request, instead of
        // quarantining the file the deadline happened to land on.
        throw;
      } catch (const std::exception &E) {
        FileIngest Fail;
        Fail.Quarantine = ingest::QuarantineRecord{
            Files[I]->Path, ingest::IngestErrorKind::WorkerException, 0,
            E.what()};
        Ingested[I] = std::move(Fail);
      } catch (...) {
        FileIngest Fail;
        Fail.Quarantine = ingest::QuarantineRecord{
            Files[I]->Path, ingest::IngestErrorKind::WorkerException, 0,
            "unknown exception"};
        Ingested[I] = std::move(Fail);
      }
    }, /*GrainSize=*/1, "pipeline.ingest");
  }

  {
    telemetry::TraceSpan CommitSpan("pipeline.commit");
    LedgerPhase Phase(Ledger, "pipeline.commit");
    incremental::FileManifest NewManifest;
    NewManifest.Files.reserve(Files.size());
    // The commit stretch is single-threaded, so one batch handle amortizes
    // global-interner locking across every file's symbol translation and
    // folded-end interning.
    StringInterner::BatchHandle CommitBatch(Ctx->strings());
    for (size_t I = 0; I != Files.size(); ++I) {
      cancel::checkpoint();
      if (Plan &&
          Plan->Entries[I].Change == incremental::FileChange::Unchanged) {
        // Cache replay: the statement stream this file contributed to the
        // snapshotting build, in the same corpus-order slot. Quarantine
        // decisions are content-deterministic, so the recorded outcome is
        // replayed rather than recomputed.
        const incremental::FileState &Old =
            Manifest.Files[Plan->Entries[I].ManifestIndex];
        if (Old.Quarantined) {
          if (Ledger) {
            ledger::Record R;
            R.Event = "quarantine";
            R.Name = Old.Path;
            R.Outcome = ingest::ingestErrorKindName(Old.QuarantineKind);
            R.Detail = Old.QuarantineDetail;
            Ledger->append(R);
          }
          Quarantine.add(ingest::QuarantineRecord{
              Old.Path, Old.QuarantineKind,
              static_cast<size_t>(Old.QuarantineByteOffset),
              Old.QuarantineDetail});
        } else {
          ParseErrors += Old.ParseErrors;
          FileId FId = static_cast<FileId>(FilePaths.size());
          FilePaths.push_back(Files[I]->Path);
          for (const incremental::CachedStmt &Cached : Old.Stmts) {
            StmtRecord Record;
            Record.File = FId;
            Record.Repo = FileRepo[I];
            Record.Line = Cached.Line;
            Record.TextHash = Cached.TextHash;
            Record.Paths =
                StmtPaths::fromPathIds(Cached.Paths, Table, *Ctx, CommitBatch);
            Statements.push_back(std::move(Record));
          }
        }
        NewManifest.Files.push_back(Old);
        continue;
      }

      FileIngest &Slot = Ingested[I];
      incremental::FileState Entry;
      Entry.Path = Files[I]->Path;
      Entry.Size = Sizes[I];
      Entry.Hash = Hashes[I];
      if (Slot.Quarantine) {
        // Quarantined: no FileId, no statements. Recording here, in the
        // sequential corpus-order loop, keeps the log deterministic.
        Entry.Quarantined = true;
        Entry.QuarantineKind = Slot.Quarantine->Kind;
        Entry.QuarantineByteOffset = Slot.Quarantine->ByteOffset;
        Entry.QuarantineDetail = Slot.Quarantine->Detail;
        if (Ledger) {
          ledger::Record R;
          R.Event = "quarantine";
          R.Name = Slot.Quarantine->File;
          R.Outcome = ingest::ingestErrorKindName(Slot.Quarantine->Kind);
          R.Detail = Slot.Quarantine->Detail;
          Ledger->append(R);
        }
        Quarantine.add(std::move(*Slot.Quarantine));
        Slot = FileIngest();
        NewManifest.Files.push_back(std::move(Entry));
        continue;
      }
      ParseErrors += Slot.Errors;
      Entry.ParseErrors = static_cast<uint32_t>(Slot.Errors);
      TotalBuildMillis += Slot.Millis;
      FileId FId = static_cast<FileId>(FilePaths.size());
      FilePaths.push_back(Files[I]->Path);
      SymbolTranslator Translate(*Slot.LocalCtx, CommitBatch);
      Entry.Stmts.reserve(Slot.Stmts.size());
      for (PreStmt &Pre : Slot.Stmts) {
        for (NamePath &Path : Pre.Paths)
          Translate.translate(Path);
        StmtRecord Record;
        Record.File = FId;
        Record.Repo = FileRepo[I];
        Record.Line = Pre.Line;
        Record.TextHash = Pre.TextHash;
        Record.Paths = StmtPaths::fromPaths(Pre.Paths, Table, *Ctx, CommitBatch);
        Entry.Stmts.push_back(incremental::CachedStmt{
            Pre.Line, Pre.TextHash, Record.Paths.Paths});
        Statements.push_back(std::move(Record));
      }
      // Free the worker-local context as soon as its symbols are committed.
      Slot = FileIngest();
      NewManifest.Files.push_back(std::move(Entry));
    }
    Manifest = std::move(NewManifest);
  }
  telemetry::count("pipeline.statements", Statements.size());
  // Register the ingest-health counters even when zero so dashboards and
  // golden snapshots can assert their presence on every run. This also
  // exports the per-file parse-error total that numParseErrors() tracks.
  telemetry::count("ingest.parse-errors", ParseErrors);
  telemetry::count("ingest.quarantined", Quarantine.size());
  {
    std::vector<size_t> ByKind = Quarantine.countsByKind();
    for (size_t K = 0; K != ingest::kNumIngestErrorKinds; ++K)
      telemetry::count("ingest.error." +
                           std::string(ingest::ingestErrorKindName(
                               static_cast<ingest::IngestErrorKind>(K))),
                       ByKind[K]);
  }
  // Same convention for the mining/interning/arena/model counters this run
  // may or may not have exercised (small corpora skip sharded paths;
  // generated corpora never mmap; cold builds touch no model file): register
  // them at zero so the stage-coverage telemetry test can assert their
  // presence unconditionally.
  for (const char *Name :
       {"fptree.shard.trees", "fptree.shard.statements",
        "fptree.shard.merged_nodes", "interner.batch.batches",
        "interner.batch.strings", "interner.batch.cache_hits",
        "interner.batch.shard_locks", "arena.slabs", "arena.bytes",
        "arena.files_mapped", "arena.mmap_fallbacks", "model.bytes",
        "model.sections", "model.load_us", "incremental.files.unchanged",
        "incremental.files.added", "incremental.files.modified",
        "incremental.files.deleted", "watchdog.stalls",
        "watchdog.live_stalls", "ledger.records", "snapshot.flushes"})
    telemetry::count(Name, 0);
  // The ingest.file_us histogram and the mem.* gauges likewise always
  // exist, even on an empty corpus, so exposition and stage-coverage
  // assertions see a fixed metric set. Guarded like count(): the disabled
  // path must not register (it is pinned allocation-free).
  if (telemetry::enabled())
    telemetry::metrics().histogram("ingest.file_us");
  samplePhaseMemory();
}

void NamerPipeline::mineModel(const corpus::Corpus &C) {
  // Phase 2: confusing word pairs from the commit history -- parallel
  // diffing (each commit parsed against its own local context), sequential
  // merge in commit order.
  {
    telemetry::TraceSpan HistSpan("pipeline.histmine");
    LedgerPhase Phase(Ledger, "pipeline.histmine");
    std::vector<std::vector<RenamedSubtoken>> Renames(C.Commits.size());
    std::vector<uint8_t> Failed(C.Commits.size(), 0);
    Pool->parallelFor(0, C.Commits.size(), [&](size_t I) {
      // A commit that cannot be diffed contributes no renames; it must not
      // take the build down (same contract as per-file ingestion).
      faultinject::ScopedKey Key("commit:" + std::to_string(I));
      try {
        if (faultinject::fire("pipeline.histmine")) {
          Failed[I] = 1;
          return;
        }
        AstContext Local;
        Tree Before = parseInto(C.Commits[I].Before, C.Lang, Local);
        Tree After = parseInto(C.Commits[I].After, C.Lang, Local);
        Renames[I] = ConfusingPairMiner::collectRenames(Before, After);
      } catch (const cancel::CancelledError &) {
        throw; // request cancellation, not a commit-level failure
      } catch (const std::exception &) {
        Renames[I].clear();
        Failed[I] = 1;
      }
    }, /*GrainSize=*/1, "pipeline.histmine");
    for (const std::vector<RenamedSubtoken> &CommitRenames : Renames)
      for (const RenamedSubtoken &R : CommitRenames)
        Pairs->addRename(R.Mistaken, R.Correct);
    size_t HistErrors = 0;
    for (uint8_t F : Failed)
      HistErrors += F;
    telemetry::count("histmine.commits", C.Commits.size());
    telemetry::count("histmine.errors", HistErrors);
    telemetry::count("histmine.pairs", Pairs->numPairs());
  }

  // Phase 3: mine both pattern kinds (Algorithm 1). Tree growth is sharded
  // over the pool (Miner::build partitions statements by a deterministic
  // hash and merges the partial trees canonically); only generate()'s
  // symbolic-path interning still runs sequentially, in an order fixed by
  // the canonical traversal, so the mined pattern ids stay
  // schedule-independent.
  std::vector<StmtPaths> AllPaths;
  AllPaths.reserve(Statements.size());
  for (const StmtRecord &S : Statements)
    AllPaths.push_back(S.Paths);

  PatternMiner Consistency(PatternKind::Consistency, Table, *Ctx,
                           Config.Miner);
  PatternMiner Confusing(PatternKind::ConfusingWord, Table, *Ctx,
                         Config.Miner);
  Confusing.setCorrectWords(Pairs->correctWords());
  {
    telemetry::TraceSpan TreeSpan("fptree.build");
    LedgerPhase Phase(Ledger, "fptree.build");
    Consistency.build(AllPaths, Pool.get());
    Confusing.build(AllPaths, Pool.get());
  }
  // pruneUncommon's per-statement evaluation is read-only and fans out
  // over the pool.
  {
    LedgerPhase Phase(Ledger, "pattern.prune");
    Patterns = Consistency.pruneUncommon(Consistency.generate(), AllPaths,
                                         Pool.get());
    for (NamePattern &P :
         Confusing.pruneUncommon(Confusing.generate(), AllPaths, Pool.get()))
      Patterns.push_back(std::move(P));
  }
  telemetry::count("pipeline.patterns", Patterns.size());
  samplePhaseMemory();
}

void NamerPipeline::scanStatements() {
  // Phase 4: evaluate every statement against the immutable pattern index
  // in parallel (index-addressed hit slots), then accumulate multi-level
  // statistics and collect violations sequentially in statement order.
  PatternIndex Index2(Patterns, Table);
  std::vector<std::vector<PatternHit>> AllHits(Statements.size());
  {
    telemetry::TraceSpan ScanSpan("pipeline.scan");
    LedgerPhase Phase(Ledger, "pipeline.scan");
    Pool->parallelFor(
        0, Statements.size(),
        [&](size_t S) { Index2.evaluate(Statements[S].Paths, AllHits[S]); },
        /*GrainSize=*/64, "pipeline.scan");
  }

  telemetry::TraceSpan StatsSpan("pipeline.stats");
  LedgerPhase StatsPhase(Ledger, "pipeline.stats");
  std::unordered_set<FileId> ViolatingFiles;
  std::unordered_set<RepoId> ViolatingRepos;
  Witnesses.assign(Patterns.size(), {});
  for (StmtId S = 0; S != Statements.size(); ++S) {
    cancel::checkpoint();
    const std::vector<PatternHit> &Hits = AllHits[S];
    Index.addStatement(Statements[S], Hits);
    // Several mined patterns (condition variants of the same idiom) can
    // flag the same fix; keep one violation per (statement, fix) pair.
    std::unordered_set<uint64_t> SeenFixes;
    for (const PatternHit &Hit : Hits) {
      if (Hit.Result == MatchResult::Satisfied &&
          Witnesses[Hit.Pattern].size() < kMaxPatternWitnesses)
        Witnesses[Hit.Pattern].push_back(S);
      if (Hit.Result != MatchResult::Violated)
        continue;
      SuggestedFix Fix =
          deriveFix(Patterns[Hit.Pattern], Statements[S].Paths, Table);
      uint64_t Key = (static_cast<uint64_t>(Fix.Prefix) << 32) ^
                     (static_cast<uint64_t>(Fix.Suggested) << 8) ^
                     static_cast<uint64_t>(Patterns[Hit.Pattern].Kind);
      if (!SeenFixes.insert(Key).second)
        continue;
      Violations.push_back(Violation{S, Hit.Pattern});
      ViolatingFiles.insert(Statements[S].File);
      ViolatingRepos.insert(Statements[S].Repo);
    }
  }
  FilesWithViolations = ViolatingFiles.size();
  ReposWithViolations = ViolatingRepos.size();
  telemetry::count("pipeline.violations", Violations.size());
  samplePhaseMemory();
}

void NamerPipeline::saveModel(const std::string &Path) const {
  uint64_t StartNs = telemetry::nowNanos();
  uint64_t StartPeakKb = memory::peakRssKb();
  auto LedgerAppend = [&](std::string Outcome) {
    if (!Ledger)
      return;
    ledger::Record R;
    R.Event = "model_save";
    R.Name = Path;
    R.Outcome = std::move(Outcome);
    R.DurationUs = (telemetry::nowNanos() - StartNs) / 1000;
    R.RssDeltaKb = static_cast<int64_t>(memory::peakRssKb()) -
                   static_cast<int64_t>(StartPeakKb);
    Ledger->append(R);
  };
  try {
    saveModelImpl(Path);
  } catch (const model::ModelError &E) {
    LedgerAppend(model::modelErrorKindName(E.kind()));
    throw;
  }
  LedgerAppend("ok");
}

void NamerPipeline::saveModelImpl(const std::string &Path) const {
  model::ModelFile F;
  F.Lang = Lang;
  F.UseAnalyses = Config.UseAnalyses;
  F.UseClassifier = Config.UseClassifier;
  F.Seed = Config.Seed;
  F.Miner = Config.Miner;
  F.Limits = Config.Limits;
  std::string GitRev = telemetry::defaultMeta("namer", 0).GitRev;
  F.GitRev = GitRev;

  const StringInterner &Strings = Ctx->strings();
  F.Strings.resize(Strings.size());
  for (Symbol S = 0; S != Strings.size(); ++S)
    F.Strings[S] = Strings.text(S);

  F.Paths.reserve(Table.size());
  for (PathId Id = 0; Id != Table.size(); ++Id)
    F.Paths.push_back(Table.path(Id));

  F.Patterns = Patterns;

  F.Pairs = Pairs->pairs();
  // pairs() orders by descending count; re-sort by (mistaken, correct) so
  // the byte layout is a pure function of the pair set.
  std::sort(F.Pairs.begin(), F.Pairs.end(),
            [](const ConfusingPair &A, const ConfusingPair &B) {
              if (A.Mistaken != B.Mistaken)
                return A.Mistaken < B.Mistaken;
              return A.Correct < B.Correct;
            });

  F.ClassifierPresent = Trained;
  if (Trained)
    F.Classifier = Classifier.snapshot();
  F.Manifest = Manifest;

  model::save(Path, F);
}

void NamerPipeline::loadModel(const std::string &Path) {
  uint64_t StartNs = telemetry::nowNanos();
  uint64_t StartPeakKb = memory::peakRssKb();
  auto LedgerAppend = [&](std::string Outcome) {
    if (!Ledger)
      return;
    ledger::Record R;
    R.Event = "model_load";
    R.Name = Path;
    R.Outcome = std::move(Outcome);
    R.DurationUs = (telemetry::nowNanos() - StartNs) / 1000;
    R.RssDeltaKb = static_cast<int64_t>(memory::peakRssKb()) -
                   static_cast<int64_t>(StartPeakKb);
    Ledger->append(R);
  };
  try {
    loadModelImpl(Path);
  } catch (const model::ModelError &E) {
    LedgerAppend(model::modelErrorKindName(E.kind()));
    throw;
  }
  LedgerAppend("ok");
  samplePhaseMemory();
}

void NamerPipeline::loadModelImpl(const std::string &Path) {
  Arena Mem;
  model::ModelFile F = model::load(Path, Mem);
  applyModel(F);
}

void NamerPipeline::loadModel(const model::ModelFile &F) {
  applyModel(F);
  samplePhaseMemory();
}

void NamerPipeline::applyModel(const model::ModelFile &F) {
  assert(Statements.empty() && !ModelLoaded &&
         "loadModel requires a fresh pipeline");
  // Invalidation rules: a model mined under different ingest semantics
  // (analyses, resource budgets) or mining thresholds describes a
  // different statement stream / pattern set -- reject rather than serve
  // silently-stale findings. MineShards and Threads only change how the
  // mine was parallelized and are deliberately not compared; Seed and
  // UseClassifier are echoed for provenance but do not gate loading.
  auto Mismatch = [](const char *What) {
    throw model::ModelError(model::ModelErrorKind::ConfigMismatch, What);
  };
  if (F.UseAnalyses != Config.UseAnalyses)
    Mismatch("UseAnalyses differs from the model's");
  if (F.Miner.MaxPathsPerStmt != Config.Miner.MaxPathsPerStmt ||
      F.Miner.MinPathFrequency != Config.Miner.MinPathFrequency ||
      F.Miner.MaxConditionPaths != Config.Miner.MaxConditionPaths ||
      F.Miner.MinPatternSupport != Config.Miner.MinPatternSupport ||
      F.Miner.MinSatisfactionRatio != Config.Miner.MinSatisfactionRatio ||
      F.Miner.Conditions != Config.Miner.Conditions ||
      F.Miner.MaxPatternsPerNode != Config.Miner.MaxPatternsPerNode)
    Mismatch("miner configuration differs from the model's");
  if (F.Limits.MaxFileBytes != Config.Limits.MaxFileBytes ||
      F.Limits.MaxTokens != Config.Limits.MaxTokens ||
      F.Limits.MaxAstNodes != Config.Limits.MaxAstNodes ||
      F.Limits.MaxNestingDepth != Config.Limits.MaxNestingDepth ||
      F.Limits.FileDeadlineMillis != Config.Limits.FileDeadlineMillis)
    Mismatch("ingest limits differ from the model's");

  telemetry::TraceSpan Apply("model.apply");
  // Interner snapshot: a fresh AstContext pre-interns the fixed kind /
  // literal symbols, which are by construction the leading entries of any
  // snapshot taken from a context that started the same way. Re-interning
  // in id order therefore reproduces every symbol id exactly; a snapshot
  // that disagrees is corrupt (the checksums passed, so it was produced by
  // an incompatible writer) and is rejected typed.
  for (Symbol S = 1; S < F.Strings.size(); ++S)
    if (Ctx->intern(F.Strings[S]) != S)
      throw model::ModelError(model::ModelErrorKind::Malformed,
                              "interner snapshot out of order at symbol " +
                                  std::to_string(S));
  for (PathId Id = 0; Id != F.Paths.size(); ++Id)
    if (Table.intern(F.Paths[Id]) != Id)
      throw model::ModelError(model::ModelErrorKind::Malformed,
                              "path-table snapshot out of order at path " +
                                  std::to_string(Id));
  // Copies, not moves: the ModelFile may be a shared immutable snapshot
  // (service::ModelSnapshot) applied concurrently by many request
  // pipelines.
  Patterns = F.Patterns;
  for (const ConfusingPair &P : F.Pairs)
    Pairs->addPair(P.Mistaken, P.Correct, P.Count);
  if (F.ClassifierPresent) {
    Classifier.restore(F.Classifier);
    Trained = true;
  }
  Manifest = F.Manifest;
  for (const incremental::FileState &E : Manifest.Files)
    for (const incremental::CachedStmt &S : E.Stmts)
      for (PathId Id : S.Paths)
        (void)Id; // ids were range-checked against F.Paths during parse
  Lang = F.Lang;
  ModelLoaded = true;
}

void NamerPipeline::scanWith(const corpus::Corpus &C, bool UseCache) {
  assert(ModelLoaded && "scanWith requires loadModel()");
  assert(Statements.empty() && "scanWith must be called once");
  telemetry::TraceSpan Span("pipeline.rescan");
  auto WallStart = std::chrono::steady_clock::now();

  if (C.Lang != Lang)
    throw model::ModelError(model::ModelErrorKind::ConfigMismatch,
                            "corpus language differs from the model's");

  std::vector<const corpus::SourceFile *> Files;
  for (const corpus::Repository &R : C.Repos)
    for (const corpus::SourceFile &File : R.Files)
      Files.push_back(&File);

  incremental::ScanPlan Plan;
  if (UseCache) {
    Plan = incremental::diffManifest(Manifest, Files);
  } else {
    // Reference full rescan: every file re-ingested, nothing replayed.
    Plan.Entries.assign(Files.size(),
                        {incremental::FileChange::Modified, 0});
    Plan.Modified = Files.size();
  }
  telemetry::count("incremental.files.unchanged", Plan.Unchanged);
  telemetry::count("incremental.files.added", Plan.Added);
  telemetry::count("incremental.files.modified", Plan.Modified);
  telemetry::count("incremental.files.deleted", Plan.Deleted);

  ingestCorpus(C, &Plan);
  scanStatements();

  auto WallEnd = std::chrono::steady_clock::now();
  BuildWallMillis =
      std::chrono::duration<double, std::milli>(WallEnd - WallStart).count();
}

std::vector<double> NamerPipeline::features(const Violation &V) const {
  FeatureInputs Inputs{Table, *Ctx, Index, Patterns, *Pairs};
  return extractViolationFeatures(V, Statements[V.Stmt], Inputs);
}

ml::Metrics
NamerPipeline::trainClassifier(const std::vector<Violation> &Labeled,
                               const std::vector<bool> &Labels) {
  // Feature extraction is read-only over the index/table and fills
  // index-addressed slots, so it fans out over the pool.
  std::vector<std::vector<double>> Features(Labeled.size());
  {
    telemetry::TraceSpan Span("classifier.features");
    Pool->parallelFor(
        0, Labeled.size(),
        [&](size_t I) { Features[I] = features(Labeled[I]); },
        /*GrainSize=*/8, "classifier.features");
  }
  ml::Metrics M = Classifier.train(Features, Labels);
  Trained = true;
  return M;
}

bool NamerPipeline::classify(const Violation &V) const {
  assert(Trained && "trainClassifier must run before classify");
  return Classifier.predict(features(V));
}

double NamerPipeline::decision(const Violation &V) const {
  assert(Trained && "trainClassifier must run before decision");
  return Classifier.decision(features(V));
}

Report NamerPipeline::makeReport(const Violation &V) const {
  const StmtRecord &Stmt = Statements[V.Stmt];
  SuggestedFix Fix = deriveFix(Patterns[V.Pattern], Stmt.Paths, Table);
  Report R;
  R.File = FilePaths[Stmt.File];
  R.Line = Stmt.Line;
  R.Original = std::string(Ctx->text(Fix.Original));
  R.Suggested = std::string(Ctx->text(Fix.Suggested));
  R.Kind = Patterns[V.Pattern].Kind;
  R.Stmt = V.Stmt;
  if (Trained)
    R.Confidence = decision(V);
  return R;
}
