//===- namer/Pipeline.h - End-to-end Namer pipeline -------------*- C++ -*-==//
///
/// \file
/// The system of Figure 1, assembled: parse the Big Code corpus, run the
/// Section 4.1 analyses, transform to AST+, extract name paths, mine
/// confusing word pairs from commit histories, mine name patterns with the
/// FP-tree algorithms, index multi-level statistics, collect violations,
/// and train / apply the defect classifier.
///
/// Ablations used by Tables 2 and 5 are configuration switches: UseAnalyses
/// ("A") disables origin decoration; UseClassifier ("C") reports every
/// violation unfiltered.
///
/// The data-parallel stages (per-file ingestion, per-commit diffing,
/// per-statement matching) fan out over a work-stealing thread pool sized
/// by PipelineConfig::Threads; FP-tree mining is the sequential barrier in
/// the middle. Outputs are bitwise identical at every thread count: workers
/// compute against worker-local interners and write index-addressed slots,
/// and all shared-state commits happen sequentially in corpus order.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_NAMER_PIPELINE_H
#define NAMER_NAMER_PIPELINE_H

#include "analysis/Origins.h"
#include "classifier/DefectClassifier.h"
#include "corpus/Corpus.h"
#include "histmine/ConfusingPairs.h"
#include "namer/Incremental.h"
#include "namer/Ingest.h"
#include "pattern/Miner.h"
#include "support/ThreadPool.h"

#include <memory>
#include <string>
#include <vector>

namespace namer {

namespace ledger {
class RunLedger;
}

namespace model {
struct ModelFile;
}

/// A naming issue report: statement location, flagged name, suggested fix.
struct Report {
  std::string File;
  uint32_t Line = 0;
  std::string Original;
  std::string Suggested;
  PatternKind Kind = PatternKind::ConfusingWord;
  double Confidence = 0.0; ///< classifier decision value (0 when unused)
  StmtId Stmt = 0;
};

struct PipelineConfig {
  /// "A": run the points-to / data flow analyses (Section 4.1).
  bool UseAnalyses = true;
  /// "C": filter violations through the defect classifier (Section 4.2).
  bool UseClassifier = true;
  MinerConfig Miner;
  AnalysisConfig Analysis;
  DefectClassifier::Config Classifier;
  /// Per-file resource budgets; files over budget are quarantined, not
  /// fatal. See Ingest.h and DESIGN.md, "Fault tolerance".
  ingest::IngestLimits Limits;
  uint64_t Seed = 7;
  /// Worker threads for the data-parallel stages (per-file ingestion,
  /// per-commit diffing, per-statement matching, feature extraction).
  /// 0 = hardware concurrency. Results are bitwise identical at every
  /// value; see DESIGN.md, "Concurrency model".
  unsigned Threads = 0;

  PipelineConfig() {
    // Thresholds scaled to the simulated corpus (the paper's 100/500
    // supports correspond to a ~1000x larger dataset).
    Miner.MinPatternSupport = 40;
    Miner.MinPathFrequency = 10;
  }
};

/// FNV hash over the semantically meaningful configuration: everything that
/// changes the statement stream, the mined pattern set or the reported
/// findings. Threads and Miner.MineShards are deliberately excluded (they
/// only change how work is parallelized -- same exclusions as loadModel's
/// invalidation rules), so run ids (ledger::RunLedger::makeRunId) are stable
/// across thread counts.
uint64_t pipelineConfigHash(const PipelineConfig &Config);

class NamerPipeline {
public:
  explicit NamerPipeline(PipelineConfig Config = PipelineConfig());

  /// Ingests the corpus and mines patterns; fills statements, violations
  /// and the statistics index. Must be called exactly once.
  void build(const corpus::Corpus &C);

  /// The mine phase of the mine/scan split: identical to build(). The name
  /// pairs with saveModel() -- mine once, persist, then serve warm scans
  /// through loadModel() + scanWith() on fresh pipelines.
  void mine(const corpus::Corpus &C) { build(C); }

  /// Serializes the mined model -- patterns, interner and path-table
  /// snapshots, confusing pairs, the trained classifier (when present) and
  /// the per-file incremental manifest -- to \p Path. Requires a completed
  /// build()/mine() or loadModel()+scanWith(). Throws model::ModelError on
  /// I/O failure.
  void saveModel(const std::string &Path) const;

  /// Loads a model produced by saveModel() into this (fresh, never-built)
  /// pipeline: reinstates the interner and path-table snapshots (asserting
  /// id stability), patterns, pairs, classifier and manifest. Throws
  /// model::ModelError -- typed, never a crash -- on any corrupt input or
  /// when the model's config echo conflicts with this pipeline's config
  /// (see DESIGN.md, "Model store & incremental scan" for the invalidation
  /// rules).
  void loadModel(const std::string &Path);

  /// Applies an already-parsed model directly -- the scan service path:
  /// many request pipelines share one immutable ModelSnapshot, so the
  /// ModelFile is taken by const reference and everything that aliases its
  /// backing storage is copied during the apply. Same invalidation rules
  /// and typed errors as the path overload; the caller keeps the backing
  /// storage (the snapshot's arena) alive for the duration of the call
  /// only.
  void loadModel(const model::ModelFile &F);

  /// The scan phase: re-evaluates \p C against the loaded model without
  /// re-mining (no fptree.* / pattern.prune work at all). With \p UseCache
  /// the per-file manifest is diffed first and only added/modified files
  /// are re-ingested -- unchanged files replay their cached statements and
  /// quarantine records -- then the manifest is refreshed to match \p C.
  /// UseCache=false re-ingests everything (the reference full rescan;
  /// byte-identical findings either way). Requires loadModel(); call once.
  void scanWith(const corpus::Corpus &C, bool UseCache = true);

  /// True after loadModel() succeeded.
  bool modelLoaded() const { return ModelLoaded; }

  /// Per-file manifest of the last build()/scanWith() (corpus order).
  const incremental::FileManifest &manifest() const { return Manifest; }

  /// Trains the defect classifier on externally labeled violations (the
  /// "small supervision"); returns the cross-validation metrics.
  ml::Metrics trainClassifier(const std::vector<Violation> &Labeled,
                              const std::vector<bool> &Labels);

  /// Table 1 feature vector of one violation.
  std::vector<double> features(const Violation &V) const;

  /// Classifier verdict; requires trainClassifier. True = report.
  bool classify(const Violation &V) const;
  double decision(const Violation &V) const;

  /// Renders a report for a violation.
  Report makeReport(const Violation &V) const;

  // --- Introspection ---------------------------------------------------
  const PipelineConfig &config() const { return Config; }
  AstContext &context() { return *Ctx; }
  const AstContext &context() const { return *Ctx; }
  const NamePathTable &table() const { return Table; }
  const std::vector<NamePattern> &patterns() const { return Patterns; }
  const std::vector<StmtRecord> &statements() const { return Statements; }
  const std::vector<Violation> &violations() const { return Violations; }
  const ConfusingPairMiner &pairs() const { return *Pairs; }
  const DefectClassifier &classifier() const { return Classifier; }
  const std::string &filePath(FileId Id) const { return FilePaths[Id]; }
  ThreadPool &pool() { return *Pool; }
  bool classifierTrained() const { return Trained; }

  /// Statements (in corpus order) that *satisfied* pattern \p Id during the
  /// build's scan phase, capped at kMaxPatternWitnesses. The explainability
  /// layer cites them as the convention a violation broke; the cap keeps
  /// the per-pattern memory bounded while the statement-order fill keeps
  /// the selection deterministic at every thread count.
  static constexpr size_t kMaxPatternWitnesses = 8;
  const std::vector<StmtId> &patternWitnesses(PatternId Id) const {
    return Witnesses[Id];
  }

  /// Corpus coverage statistics (Section 5.2 "statistics on pattern
  /// mining").
  size_t numFiles() const { return FilePaths.size(); }
  size_t numRepos() const { return NumRepos; }
  size_t numFilesWithViolations() const { return FilesWithViolations; }
  size_t numReposWithViolations() const { return ReposWithViolations; }
  size_t numParseErrors() const { return ParseErrors; }

  /// Files skipped by the last build() — failed or over-budget, recorded in
  /// corpus order. Quarantined files get no FileId and contribute no
  /// statements, so the log never perturbs downstream ids.
  const ingest::QuarantineLog &quarantine() const { return Quarantine; }
  size_t numQuarantined() const { return Quarantine.size(); }

  /// Mean per-file parse+analysis+extraction time in milliseconds (sum of
  /// per-file worker time over files; on a multicore pool this exceeds the
  /// elapsed wall time).
  double avgMillisPerFile() const {
    return FilePaths.empty() ? 0.0
                             : TotalBuildMillis /
                                   static_cast<double>(FilePaths.size());
  }

  /// Elapsed wall-clock time of the last build() in milliseconds.
  double buildWallMillis() const { return BuildWallMillis; }

  /// Attaches a run ledger (nullptr detaches). The pipeline appends one
  /// "phase" record per phase, one "quarantine" record per quarantined
  /// file and one "model_save"/"model_load" record per model store
  /// operation -- always from sequential code, so the record stream is
  /// deterministic at any thread count. The ledger must outlive the
  /// pipeline (or be detached first); the pipeline does not own it.
  void setLedger(ledger::RunLedger *L) { Ledger = L; }

private:
  /// Phase 1: parallel per-file ingest + sequential corpus-order commit,
  /// filling Statements and the manifest. With \p Plan, unchanged files
  /// replay their cached statements instead of re-ingesting.
  void ingestCorpus(const corpus::Corpus &C,
                    const incremental::ScanPlan *Plan);
  /// Phases 2+3: histmine confusing pairs, FP-tree mine + prune patterns.
  void mineModel(const corpus::Corpus &C);
  /// Phase 4: evaluate every statement against the pattern index, fill the
  /// statistics index, witnesses and violations.
  void scanStatements();

  /// Publishes the mem.* gauges (MemoryTracker) plus mem.interner_bytes at
  /// a phase boundary.
  void samplePhaseMemory() const;

  /// saveModel()/loadModel() bodies; the public wrappers add the
  /// model_save/model_load ledger records (outcome, duration, RSS delta).
  void saveModelImpl(const std::string &Path) const;
  void loadModelImpl(const std::string &Path);
  /// Shared tail of both loadModel overloads: config-echo checks + apply.
  void applyModel(const model::ModelFile &F);

  PipelineConfig Config;
  std::unique_ptr<AstContext> Ctx;
  std::unique_ptr<ThreadPool> Pool;
  NamePathTable Table;
  std::unique_ptr<ConfusingPairMiner> Pairs;
  WellKnownRegistry Registry;

  std::vector<std::string> FilePaths;
  std::vector<StmtRecord> Statements;
  std::vector<NamePattern> Patterns;
  std::vector<Violation> Violations;
  std::vector<std::vector<StmtId>> Witnesses; // PatternId -> satisfying stmts
  DatasetIndex Index;
  DefectClassifier Classifier;
  bool Trained = false;

  incremental::FileManifest Manifest;
  bool ModelLoaded = false;
  corpus::Language Lang = corpus::Language::Python;

  size_t NumRepos = 0;
  size_t FilesWithViolations = 0;
  size_t ReposWithViolations = 0;
  size_t ParseErrors = 0;
  ingest::QuarantineLog Quarantine;
  double TotalBuildMillis = 0.0;
  double BuildWallMillis = 0.0;
  ledger::RunLedger *Ledger = nullptr;
};

} // namespace namer

#endif // NAMER_NAMER_PIPELINE_H
