//===- namer/Explain.h - Finding provenance (explainability) ----*- C++ -*-==//
///
/// \file
/// The decision-observability layer: for every Violation the pipeline can
/// produce an Explanation that preserves the whole evidence chain the
/// Report discards --
///
///   * PatternProvenance -- the violated NamePattern rendered as its
///     concrete/symbolic name paths, plus its mining lineage: the FP-tree
///     occurrence count (Support) and the pruneUncommon statistics
///     (dataset matches / satisfactions / violations and the keep ratio);
///   * Witnesses -- up to k corpus statements (file:line plus the name
///     path they bind) that *satisfy* the pattern, i.e. the convention the
///     flagged statement broke, selected in deterministic corpus order;
///   * ClassifierAttribution -- the full Table-1 feature vector with the
///     per-feature contribution weight x standardized value from the
///     linear classifier; the contributions plus the bias sum exactly to
///     the decision value (the recipe is linear end to end);
///   * WordPairEvidence -- for confusing-word findings, the mined
///     <mistaken, correct> pair and its commit-history evidence count.
///
/// renderExplanation() is the human rendering behind
/// `namer-scan --explain`; the machine renderings live in
/// namer/FindingsExport.h (SARIF 2.1.0 and the flat findings JSON).
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_NAMER_EXPLAIN_H
#define NAMER_NAMER_EXPLAIN_H

#include "namer/Pipeline.h"

#include <string>
#include <vector>

namespace namer {

/// One corpus statement that satisfies the violated pattern: the evidence
/// that the convention exists.
struct WitnessRef {
  std::string File;
  uint32_t Line = 0;
  /// The conforming name this witness uses at the deduction position.
  std::string Name;
  /// The witness's concrete name path at the deduction prefix, in the
  /// paper's rendering.
  std::string PathText;
};

/// The violated pattern plus its mining lineage.
struct PatternProvenance {
  PatternId Id = 0;
  PatternKind Kind = PatternKind::Consistency;
  /// formatPattern() rendering: condition and deduction name paths.
  std::string Rendered;
  /// Occurrence count at the generating FP-tree node.
  uint32_t Support = 0;
  /// pruneUncommon statistics over the mining dataset.
  uint32_t DatasetMatches = 0;
  uint32_t DatasetSatisfactions = 0;
  uint32_t DatasetViolations = 0;
  /// Satisfactions / matches: the ratio pruneUncommon thresholded on.
  double SatisfactionRate = 0.0;
  size_t ConditionSize = 0;
};

/// One Table-1 feature with its share of the decision value.
struct FeatureContribution {
  std::string Feature;       ///< ViolationFeatureNames entry
  double Value = 0.0;        ///< raw feature value
  double Standardized = 0.0; ///< (value - mean) / stddev
  double Weight = 0.0;       ///< back-projected linear weight
  double Contribution = 0.0; ///< Weight * Standardized
};

/// The classifier's verdict decomposed per feature. Present is false when
/// the pipeline ran the UseClassifier=false ablation (or was never
/// trained); then the finding was reported unfiltered.
struct ClassifierAttribution {
  bool Present = false;
  std::string Model; ///< selected family, e.g. "svm-linear"
  std::vector<FeatureContribution> Contributions;
  double Bias = 0.0;
  /// sum(Contributions) + Bias, up to float associativity.
  double Decision = 0.0;
};

/// Commit-history evidence for a confusing-word finding.
struct WordPairEvidence {
  bool Present = false;
  std::string Mistaken;
  std::string Correct;
  /// Number of commits whose diff renamed Mistaken to Correct.
  uint32_t CommitCount = 0;
};

/// Everything known about one finding.
struct Explanation {
  Report R;
  PatternProvenance Pattern;
  std::vector<WitnessRef> Witnesses;
  ClassifierAttribution Attribution;
  WordPairEvidence WordPair;
};

/// Builds the full evidence chain for \p V. Deterministic: witness
/// selection follows the pipeline's corpus-order capture, and every number
/// derives from the (thread-count independent) build statistics.
/// \p MaxWitnesses caps the cited witnesses (<= NamerPipeline's per-pattern
/// capture cap).
Explanation explainViolation(const NamerPipeline &P, const Violation &V,
                             size_t MaxWitnesses = 3);

/// Human rendering used by `namer-scan --explain`: pattern, lineage,
/// witnesses, per-feature contributions, word-pair evidence.
std::string renderExplanation(const Explanation &E);

} // namespace namer

#endif // NAMER_NAMER_EXPLAIN_H
