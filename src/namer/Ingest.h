//===- namer/Ingest.h - Ingestion resource budgets and quarantine -*- C++ -*-=//
///
/// \file
/// Hardened-ingestion support: per-file resource budgets and the quarantine
/// log. The Big Code corpus is adversarial by volume alone — generated
/// files, minified blobs, nesting bombs, editor artifacts — so the pipeline
/// treats every per-file failure as data, not as a crash: the file is
/// skipped, the reason is recorded here, and the run carries on.
///
/// Determinism: whether a file is quarantined depends only on the file's
/// content and the configured limits (the wall-clock deadline guard is the
/// one exception and ships disabled), and the log is filled in corpus order
/// by the sequential commit phase — so the quarantine set, and therefore
/// every downstream id and finding, is bitwise identical at every thread
/// count. See DESIGN.md, "Fault tolerance".
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_NAMER_INGEST_H
#define NAMER_NAMER_INGEST_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace namer {
namespace ingest {

/// Why a file was quarantined. Keep ingestErrorKindName in sync.
enum class IngestErrorKind : uint8_t {
  FileTooLarge,    ///< byte size over IngestLimits::MaxFileBytes
  TokenBudget,     ///< token count over IngestLimits::MaxTokens
  NodeBudget,      ///< AST node count over IngestLimits::MaxAstNodes
  DepthBudget,     ///< parser nesting-depth guard fired
  Deadline,        ///< per-file deadline elapsed (opt-in, nondeterministic)
  WorkerException, ///< exception escaped the per-file worker task
};

constexpr size_t kNumIngestErrorKinds = 6;

/// Stable kebab-case name, e.g. "file-too-large"; used for telemetry
/// counter suffixes and JSON output.
const char *ingestErrorKindName(IngestErrorKind Kind);

/// Per-file resource budgets enforced during ingestion. Defaults admit any
/// plausible hand-written source file; they exist to bound the damage of
/// generated or adversarial inputs.
struct IngestLimits {
  /// Files larger than this many bytes are quarantined unparsed.
  size_t MaxFileBytes = 4u << 20; // 4 MiB
  /// Lexed token budget (checked after lexing, before analyses).
  size_t MaxTokens = 1u << 20;
  /// AST node budget (checked after parsing, before analyses).
  size_t MaxAstNodes = 2u << 20;
  /// Parser recursion cap, forwarded to the frontends' ParseOptions. A
  /// file whose parse trips the guard is quarantined as DepthBudget.
  unsigned MaxNestingDepth = 192;
  /// Wall-clock budget per file in milliseconds; 0 disables the check.
  /// The ONLY nondeterministic guard — off by default so byte-identity
  /// across thread counts holds; see DESIGN.md before enabling.
  uint64_t FileDeadlineMillis = 0;
};

/// One quarantined file. ByteOffset is the position the budget tripped at
/// when that is meaningful (FileTooLarge: the byte cap), 0 otherwise.
struct QuarantineRecord {
  std::string File;
  IngestErrorKind Kind = IngestErrorKind::WorkerException;
  size_t ByteOffset = 0;
  std::string Detail;
};

/// Quarantined files of one build, in corpus order (filled by the
/// sequential commit phase, so identical at every thread count).
class QuarantineLog {
public:
  void add(QuarantineRecord Record) {
    Records.push_back(std::move(Record));
  }
  void clear() { Records.clear(); }
  bool empty() const { return Records.empty(); }
  size_t size() const { return Records.size(); }
  const std::vector<QuarantineRecord> &records() const { return Records; }

  /// Per-kind counts, indexed by IngestErrorKind.
  std::vector<size_t> countsByKind() const;

  /// Aligned console summary (one row per quarantined file).
  std::string summaryTable() const;

  /// Deterministic JSON array, records in corpus order with sorted keys:
  /// [{"byte_offset":N,"detail":"...","file":"...","kind":"..."},...]
  std::string json() const;

private:
  std::vector<QuarantineRecord> Records;
};

} // namespace ingest
} // namespace namer

#endif // NAMER_NAMER_INGEST_H
