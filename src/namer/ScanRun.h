//===- namer/ScanRun.h - Shared finding selection + rendering ---*- C++ -*-==//
//
// Part of the Namer reproduction of "Learning to Find Naming Issues with Big
// Code and Small Supervision" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The finding selection and report rendering shared by the batch CLI
/// (tools/namer-scan) and the scan service (src/service). Both front ends
/// must emit byte-identical report lines for the same pipeline state --
/// that identity is the service's post-soak acceptance check -- so the
/// classifier filter, the confidence-then-canonical sort, the MaxReports
/// truncation and the printf format all live here, once.
///
//===----------------------------------------------------------------------===//

#ifndef NAMER_NAMER_SCANRUN_H
#define NAMER_NAMER_SCANRUN_H

#include "namer/Explain.h"
#include "namer/Pipeline.h"

#include <string>
#include <vector>

namespace namer {

/// How to select the findings of a completed build()/scanWith().
struct FindingSelectOptions {
  /// Keep only reports whose file path starts with this prefix (the
  /// scanned tree / the request's repository); empty keeps everything.
  std::string PathPrefix;
  /// When non-empty, keep only reports for exactly these paths -- the
  /// inline files of a service request, which have no common directory
  /// prefix to filter by. Applied in addition to PathPrefix.
  std::vector<std::string> OnlyPaths;
  /// Filter violations through the trained classifier. Ignored (treated
  /// as false) when the pipeline has no trained classifier.
  bool UseClassifier = true;
  /// Keep the most confident N findings (ties broken by the canonical
  /// report order, so truncation is deterministic at every thread count).
  size_t MaxReports = 50;
};

/// Selects the findings of \p P per \p Opts and explains each one;
/// returned in the canonical (file, line, original, suggested) order of
/// sortExplanations().
std::vector<Explanation> selectFindings(const NamerPipeline &P,
                                        const FindingSelectOptions &Opts);

/// The canonical one-line diagnostic for a report, newline-terminated --
/// the exact bytes namer-scan prints and the service echoes.
std::string renderReportLine(const Report &R);

} // namespace namer

#endif // NAMER_NAMER_SCANRUN_H
