//===- examples/quickstart.cpp - Namer in 60 lines ------------------------==//
//
// Quickstart: mine name patterns from a (simulated) Big Code corpus, train
// the defect classifier on a handful of labeled violations, and report
// naming issues with suggested fixes.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "namer/Evaluation.h"

#include <cstdio>

using namespace namer;

int main() {
  // 1. Big Code: a deterministic simulated GitHub corpus (see DESIGN.md).
  corpus::CorpusConfig CorpusConfig;
  CorpusConfig.NumRepos = 150;
  corpus::Corpus BigCode = corpus::generateCorpus(CorpusConfig);
  std::printf("corpus: %zu repositories, %zu files, %zu commits\n",
              BigCode.Repos.size(), BigCode.numFiles(),
              BigCode.Commits.size());

  // 2. Build the pipeline: parse, analyze (points-to + data flow),
  //    transform to AST+, mine confusing word pairs and name patterns.
  NamerPipeline Namer;
  Namer.build(BigCode);
  std::printf("mined %zu name patterns, %zu confusing word pairs; "
              "%zu violations\n",
              Namer.patterns().size(), Namer.pairs().numPairs(),
              Namer.violations().size());

  // 3. Small supervision: label 120 violations (the corpus oracle plays
  //    the human inspector) and train the classifier.
  corpus::InspectionOracle Oracle(BigCode);
  std::vector<size_t> Indices;
  std::vector<bool> Labels;
  collectBalancedLabels(Namer, Oracle, /*Target=*/120, /*Seed=*/1, Indices,
                        Labels);
  std::vector<Violation> Labeled;
  for (size_t I : Indices)
    Labeled.push_back(Namer.violations()[I]);
  ml::Metrics Cv = Namer.trainClassifier(Labeled, Labels);
  std::printf("classifier: %s, cross-validation accuracy %.0f%%\n",
              Namer.classifier().selectedFamily().c_str(),
              Cv.Accuracy * 100);

  // 4. Report naming issues.
  std::printf("\nfirst ten reports:\n");
  size_t Shown = 0;
  for (const Violation &V : Namer.violations()) {
    if (!Namer.classify(V))
      continue;
    Report R = Namer.makeReport(V);
    std::printf("  %s:%u: '%s' should be '%s' (%s pattern)\n",
                R.File.c_str(), R.Line, R.Original.c_str(),
                R.Suggested.c_str(),
                R.Kind == PatternKind::Consistency ? "consistency"
                                                   : "confusing word");
    if (++Shown == 10)
      break;
  }
  return 0;
}
