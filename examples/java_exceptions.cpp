//===- examples/java_exceptions.cpp - Java exception-handling audit -------==//
//
// Domain scenario 3: auditing exception handling in a Java codebase, the
// Table 6 workload. The pipeline flags catch clauses that swallow Error
// (catch Throwable) and stack traces that are fetched but dropped
// (getStackTrace vs printStackTrace) -- both semantic defects -- and shows
// how the static analyses resolve the receiver types that make these
// patterns precise.
//
//===----------------------------------------------------------------------===//

#include "analysis/Origins.h"
#include "frontend/java/JavaParser.h"
#include "namer/Pipeline.h"

#include <cstdio>

using namespace namer;

int main() {
  corpus::Repository Audited;
  Audited.Name = "payments-service";
  corpus::SourceFile F;
  F.Path = "src/RetryLoop.java";
  F.Text = "public class RetryLoop {\n"
           "    public void submitBatch() {\n"
           "        try {\n"
           "            this.worker.send();\n"
           "        } catch (Throwable e) {\n"
           "            e.getStackTrace();\n"
           "        }\n"
           "    }\n"
           "    public void drainQueue() {\n"
           "        try {\n"
           "            this.worker.process();\n"
           "        } catch (Exception e) {\n"
           "            e.printStackTrace();\n"
           "        }\n"
           "    }\n"
           "}\n";
  Audited.Files.push_back(F);

  // Show what the Section 4.1 analyses see in this file.
  {
    AstContext Ctx;
    auto Parsed = java::parseJava(F.Text, Ctx);
    AnalysisResult Analysis =
        computeOrigins(Parsed.Module, WellKnownRegistry::forJava());
    std::printf("static analysis of %s: %zu Datalog facts, %zu derived "
                "tuples, k=%u\n",
                F.Path.c_str(), Analysis.NumFacts, Analysis.NumDerivedTuples,
                Analysis.EffectiveK);
    for (const auto &[Node, Origin] : Analysis.Origins) {
      std::string_view Name = Parsed.Module.valueText(Node);
      if (Name == "e" || Name == "printStackTrace" || Name == "getStackTrace")
        std::printf("  origin of '%.*s' resolved to '%.*s'\n",
                    static_cast<int>(Name.size()), Name.data(),
                    static_cast<int>(Ctx.text(Origin).size()),
                    Ctx.text(Origin).data());
    }
  }

  corpus::CorpusConfig Config;
  Config.Lang = corpus::Language::Java;
  Config.NumRepos = 200;
  corpus::Corpus BigCode = corpus::generateCorpus(Config);
  BigCode.Repos.push_back(Audited);

  NamerPipeline Namer;
  Namer.build(BigCode);

  std::printf("\naudit results for %s:\n", Audited.Name.c_str());
  size_t Issues = 0;
  for (const Violation &V : Namer.violations()) {
    Report R = Namer.makeReport(V);
    if (R.File != F.Path)
      continue;
    ++Issues;
    std::printf("  %s:%u: replace '%s' with '%s'\n", R.File.c_str(), R.Line,
                R.Original.c_str(), R.Suggested.c_str());
  }
  std::printf("%zu issue(s). Expected: Throwable -> Exception and "
              "get[StackTrace] -> print[StackTrace];\nthe clean drainQueue "
              "method must stay silent.\n",
              Issues);
  return Issues >= 2 ? 0 : 1;
}
