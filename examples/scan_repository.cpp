//===- examples/scan_repository.cpp - CI-style repository scan ------------==//
//
// Domain scenario 1: a code-review bot. Patterns are mined once from the
// ecosystem corpus; then a *new* repository (not part of the mining set)
// is scanned and annotated with naming issues, the way Namer would run as
// an IDE plugin or pull-request bot (the deployment modes of the Section
// 5.4 user study).
//
//===----------------------------------------------------------------------===//

#include "namer/Evaluation.h"

#include <cstdio>

using namespace namer;

int main() {
  // The repository under review: a fresh project with a few issues.
  corpus::Repository UnderReview;
  UnderReview.Name = "incoming-pr";
  corpus::SourceFile F;
  F.Path = "service/session_store.py";
  F.Text = "from unittest import TestCase\n"
           "\n"
           "class SessionStore(object):\n"
           "    def __init__(self, host, port, token):\n"
           "        self.host = host\n"
           "        self.port = por\n"            // typo
           "        self.token = token\n"
           "    def get_host(self):\n"
           "        return self.host\n"
           "\n"
           "class TestSessionStore(TestCase):\n"
           "    def test_port_default(self):\n"
           "        self.assertTrue(self.store.port_value, 8080)\n" // misuse
           "    def test_token_roundtrip(self):\n"
           "        self.assertEqual(self.store.token_text, 42)\n";
  UnderReview.Files.push_back(F);

  // Mine patterns from the ecosystem plus the repository under review.
  corpus::CorpusConfig Config;
  Config.NumRepos = 200;
  corpus::Corpus BigCode = corpus::generateCorpus(Config);
  BigCode.Repos.push_back(UnderReview);

  NamerPipeline Namer;
  Namer.build(BigCode);

  std::printf("scanning %s ...\n\n", UnderReview.Name.c_str());
  size_t Issues = 0;
  for (const Violation &V : Namer.violations()) {
    Report R = Namer.makeReport(V);
    if (R.File != F.Path)
      continue;
    ++Issues;
    std::printf("%s:%u: naming issue: '%s' looks wrong here; did you mean "
                "'%s'? [%s pattern]\n",
                R.File.c_str(), R.Line, R.Original.c_str(),
                R.Suggested.c_str(),
                R.Kind == PatternKind::Consistency ? "consistency"
                                                   : "confusing-word");
  }
  std::printf("\n%zu naming issue(s) found. Expected: port/por typo and "
              "assertTrue -> assertEqual.\n",
              Issues);
  return Issues >= 2 ? 0 : 1;
}
