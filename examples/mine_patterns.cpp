//===- examples/mine_patterns.cpp - Inspecting mined naming idioms --------==//
//
// Domain scenario 2: interpretability. One of the paper's selling points
// over deep models is that the mined rules are human-readable. This
// example mines patterns from the corpus and pretty-prints the strongest
// naming idioms of each kind together with their corpus statistics, plus
// the most frequent confusing word pairs from the commit history.
//
//===----------------------------------------------------------------------===//

#include "namer/Pipeline.h"

#include <algorithm>
#include <cstdio>

using namespace namer;

int main() {
  corpus::CorpusConfig Config;
  Config.NumRepos = 150;
  corpus::Corpus BigCode = corpus::generateCorpus(Config);

  NamerPipeline Namer;
  Namer.build(BigCode);
  AstContext &Ctx = Namer.context();

  std::printf("=== Top confusing word pairs (mined from %zu commits) ===\n",
              BigCode.Commits.size());
  size_t Shown = 0;
  for (const ConfusingPair &P : Namer.pairs().pairs()) {
    if (P.Count < 2)
      continue;
    std::printf("  %-12s -> %-12s seen %u times\n",
                std::string(Ctx.text(P.Mistaken)).c_str(),
                std::string(Ctx.text(P.Correct)).c_str(), P.Count);
    if (++Shown == 12)
      break;
  }

  // Strongest patterns by dataset support, one listing per kind.
  std::vector<const NamePattern *> ByKind[2];
  for (const NamePattern &P : Namer.patterns())
    ByKind[P.Kind == PatternKind::Consistency ? 0 : 1].push_back(&P);
  for (auto &List : ByKind)
    std::sort(List.begin(), List.end(),
              [](const NamePattern *A, const NamePattern *B) {
                return A->DatasetMatches > B->DatasetMatches;
              });

  const char *KindNames[2] = {"consistency", "confusing word"};
  for (int Kind = 0; Kind != 2; ++Kind) {
    std::printf("\n=== Strongest %s patterns ===\n", KindNames[Kind]);
    for (size_t I = 0; I != std::min<size_t>(3, ByKind[Kind].size()); ++I) {
      const NamePattern &P = *ByKind[Kind][I];
      std::printf("\n#%zu  matches=%u satisfactions=%u violations=%u "
                  "(satisfaction rate %.2f)\n%s",
                  I + 1, P.DatasetMatches, P.DatasetSatisfactions,
                  P.DatasetViolations, P.datasetSatisfactionRate(),
                  formatPattern(P, Namer.table(), Ctx).c_str());
    }
  }
  std::printf("\nEvery rule above is a checkable statement about name "
              "paths -- inspect,\nedit, or veto them; no embeddings "
              "involved.\n");
  return 0;
}
