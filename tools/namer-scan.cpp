//===- tools/namer-scan.cpp - Namer command line scanner ------------------==//
//
// Scans a directory of Python or Java sources for naming issues:
//
//   namer-scan --lang=python [--no-classifier] [--max-reports=N]
//              [--threads=N] [--max-file-bytes=N] [--max-nesting=N]
//              [--mine-shards=N] [--strict] [--stats[=FILE]] [--trace-out=FILE]
//              [--sarif=FILE] [--findings=FILE] [--explain[=N]]
//              [--fail-on-findings] [--model-out=FILE] [--model-in=FILE]
//              [--incremental-state=DIR] [--ledger=FILE] [--metrics-out=FILE]
//              [--metrics-interval-ms=N] [--span-deadline-ms=N]
//              [--profile-out=FILE] [--profile-hz=N]
//              [--deterministic-obs] DIR
//
// Patterns are mined from the bundled ecosystem corpus *plus* the scanned
// tree (so project-local idioms contribute), violations are filtered by a
// classifier trained on the corpus oracle's labels, and reports print as
// file:line diagnostics with suggested fixes, in deterministic
// (file, line, original, suggested) order.
//
// Observability (DESIGN.md, "Observability" and "Explainability"):
// --stats prints a per-stage summary table on stderr and writes the flat
// stats JSON (default namer-stats.json, or the given FILE); --trace-out
// writes a Chrome trace-event file loadable in chrome://tracing or
// ui.perfetto.dev; --sarif writes a SARIF 2.1.0 document (GitHub code
// scanning / VS Code); --findings writes the flat findings JSON;
// --explain prints the full evidence chain (pattern lineage, witnesses,
// per-feature classifier contributions) under each report, optionally
// capped at N explanations. --fail-on-findings exits 2 when any finding
// survives the classifier -- the CI contract.
//
// Profiling (DESIGN.md, "Profiling"): --profile-out writes folded
// (collapsed) span stacks for flamegraph.pl / speedscope / namer-profile.
// Every span close contributes one structural sample; unless
// --deterministic-obs is set, a background sampler additionally walks the
// live span stacks --profile-hz times per second (default 97) to add
// wall-clock weight. Under --deterministic-obs only the structural samples
// remain, so the folded file is byte-identical at every --threads value.
//
// Robustness (DESIGN.md, "Fault tolerance"): files that fail to ingest or
// exceed a resource budget are quarantined, summarized on stderr, and never
// abort the scan. --max-file-bytes / --max-nesting override the budget
// defaults; --strict exits 3 when any file was quarantined.
//
// Model store (DESIGN.md, "Model store & incremental scan"): --model-out
// persists the mined model (patterns, interner snapshot, pairs, classifier,
// per-file manifest) after the scan; --model-in skips mining entirely and
// serves a warm scan from the saved model; --incremental-state=DIR keeps
// DIR/model.nmr across runs -- the first run mines cold and saves, later
// runs load it, re-ingest only files the manifest says changed, and save
// the refreshed manifest back. Corrupt or mismatched model files fail with
// a typed diagnostic and exit 4; findings are byte-identical cold vs warm.
//
//===----------------------------------------------------------------------===//

#include "namer/Evaluation.h"
#include "namer/FindingsExport.h"
#include "namer/ModelStore.h"
#include "namer/ScanRun.h"
#include "support/Arena.h"
#include "support/MemoryTracker.h"
#include "support/Profiler.h"
#include "support/RunLedger.h"
#include "support/Telemetry.h"
#include "support/TextTable.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <unistd.h>
#include <vector>

using namespace namer;
namespace fs = std::filesystem;

namespace {

struct Options {
  corpus::Language Lang = corpus::Language::Python;
  bool UseClassifier = true;
  size_t MaxReports = 50;
  /// Pipeline worker threads; 0 = hardware concurrency. Reports are
  /// identical at every value.
  unsigned Threads = 0;
  /// --stats[=FILE]: write the flat stats JSON and print the per-stage
  /// summary table to stderr.
  bool Stats = false;
  std::string StatsFile = "namer-stats.json";
  /// --trace-out=FILE: write Chrome trace-event JSON.
  std::string TraceFile;
  /// --sarif=FILE: write the SARIF 2.1.0 document.
  std::string SarifFile;
  /// --findings=FILE: write the flat findings JSON.
  std::string FindingsFile;
  /// --explain[=N]: print explanations under the first N reports (bare
  /// --explain explains every printed report).
  bool Explain = false;
  size_t ExplainLimit = static_cast<size_t>(-1);
  /// --fail-on-findings: exit 2 when any finding survives (CI contract).
  bool FailOnFindings = false;
  /// --max-file-bytes=N / --max-nesting=N: ingestion budget overrides
  /// (0 = keep the IngestLimits default).
  size_t MaxFileBytes = 0;
  unsigned MaxNesting = 0;
  /// --mine-shards=N: number of FP-tree shards the miner grows in
  /// parallel (0 = keep the MinerConfig default). Patterns are identical
  /// at every value; this is a throughput knob only.
  size_t MineShards = 0;
  /// --strict: exit 3 when any file was quarantined during ingestion.
  bool Strict = false;
  /// --model-out=FILE: save the mined model after the scan.
  std::string ModelOut;
  /// --model-in=FILE: load a saved model and serve a warm scan (no mining).
  std::string ModelIn;
  /// --incremental-state=DIR: keep DIR/model.nmr across runs (load when
  /// present, always save the refreshed manifest back).
  std::string IncrementalState;
  /// --ledger=FILE: append-only JSONL run ledger (one record per phase /
  /// quarantined file / model store operation / stall).
  std::string LedgerFile;
  /// --metrics-out=FILE: Prometheus text exposition, written atomically on
  /// exit (and every --metrics-interval-ms while running).
  std::string MetricsOut;
  unsigned MetricsIntervalMs = 0;
  /// --span-deadline-ms=N: flag spans running longer than N ms
  /// (watchdog.stalls / ledger "stall" records; detection only).
  unsigned SpanDeadlineMs = 0;
  /// --profile-out=FILE: write folded (collapsed) span stacks on exit.
  std::string ProfileOut;
  /// --profile-hz=N: live-stack sampling rate of the background sampler
  /// (0 = structural close samples only; ignored under
  /// --deterministic-obs, which always disables the timer).
  unsigned ProfileHz = 97;
  /// --deterministic-obs: zero the telemetry clock and RSS sources and
  /// drop schedule-dependent series (pool.*, interner.shard_contention)
  /// from the exposition, so --ledger and --metrics-out files are
  /// byte-identical at every --threads value.
  bool DeterministicObs = false;
  /// --test-raise-signal=TERM|INT (hidden): raise the signal from the main
  /// thread at a fixed point (after the build, before reports), so the
  /// interrupt-flush path is exercised deterministically under ctest.
  int TestRaiseSignal = 0;
  std::string Directory;
};

void printUsage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--lang=python|java] [--no-classifier] "
               "[--max-reports=N] [--threads=N] [--max-file-bytes=N] "
               "[--max-nesting=N] [--mine-shards=N] [--strict] "
               "[--stats[=FILE]] "
               "[--trace-out=FILE] [--sarif=FILE] [--findings=FILE] "
               "[--explain[=N]] [--fail-on-findings] [--model-out=FILE] "
               "[--model-in=FILE] [--incremental-state=DIR] [--ledger=FILE] "
               "[--metrics-out=FILE] [--metrics-interval-ms=N] "
               "[--span-deadline-ms=N] [--profile-out=FILE] [--profile-hz=N] "
               "[--deterministic-obs] DIR\n",
               Argv0);
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--lang=python") {
      Opts.Lang = corpus::Language::Python;
    } else if (Arg == "--lang=java") {
      Opts.Lang = corpus::Language::Java;
    } else if (Arg == "--no-classifier") {
      Opts.UseClassifier = false;
    } else if (Arg.rfind("--max-reports=", 0) == 0) {
      Opts.MaxReports = static_cast<size_t>(
          std::strtoul(Arg.c_str() + std::strlen("--max-reports="), nullptr,
                       10));
    } else if (Arg.rfind("--threads=", 0) == 0) {
      Opts.Threads = static_cast<unsigned>(
          std::strtoul(Arg.c_str() + std::strlen("--threads="), nullptr, 10));
    } else if (Arg == "--stats") {
      Opts.Stats = true;
    } else if (Arg.rfind("--stats=", 0) == 0) {
      Opts.Stats = true;
      Opts.StatsFile = Arg.substr(std::strlen("--stats="));
    } else if (Arg.rfind("--trace-out=", 0) == 0) {
      Opts.TraceFile = Arg.substr(std::strlen("--trace-out="));
    } else if (Arg.rfind("--sarif=", 0) == 0) {
      Opts.SarifFile = Arg.substr(std::strlen("--sarif="));
    } else if (Arg.rfind("--findings=", 0) == 0) {
      Opts.FindingsFile = Arg.substr(std::strlen("--findings="));
    } else if (Arg == "--explain") {
      Opts.Explain = true;
    } else if (Arg.rfind("--explain=", 0) == 0) {
      Opts.Explain = true;
      Opts.ExplainLimit = static_cast<size_t>(
          std::strtoul(Arg.c_str() + std::strlen("--explain="), nullptr, 10));
    } else if (Arg == "--fail-on-findings") {
      Opts.FailOnFindings = true;
    } else if (Arg.rfind("--max-file-bytes=", 0) == 0) {
      Opts.MaxFileBytes = static_cast<size_t>(std::strtoull(
          Arg.c_str() + std::strlen("--max-file-bytes="), nullptr, 10));
    } else if (Arg.rfind("--max-nesting=", 0) == 0) {
      Opts.MaxNesting = static_cast<unsigned>(std::strtoul(
          Arg.c_str() + std::strlen("--max-nesting="), nullptr, 10));
    } else if (Arg.rfind("--mine-shards=", 0) == 0) {
      Opts.MineShards = static_cast<size_t>(std::strtoul(
          Arg.c_str() + std::strlen("--mine-shards="), nullptr, 10));
    } else if (Arg == "--strict") {
      Opts.Strict = true;
    } else if (Arg.rfind("--model-out=", 0) == 0) {
      Opts.ModelOut = Arg.substr(std::strlen("--model-out="));
    } else if (Arg.rfind("--model-in=", 0) == 0) {
      Opts.ModelIn = Arg.substr(std::strlen("--model-in="));
    } else if (Arg.rfind("--incremental-state=", 0) == 0) {
      Opts.IncrementalState = Arg.substr(std::strlen("--incremental-state="));
    } else if (Arg.rfind("--ledger=", 0) == 0) {
      Opts.LedgerFile = Arg.substr(std::strlen("--ledger="));
    } else if (Arg.rfind("--metrics-out=", 0) == 0) {
      Opts.MetricsOut = Arg.substr(std::strlen("--metrics-out="));
    } else if (Arg.rfind("--metrics-interval-ms=", 0) == 0) {
      Opts.MetricsIntervalMs = static_cast<unsigned>(std::strtoul(
          Arg.c_str() + std::strlen("--metrics-interval-ms="), nullptr, 10));
    } else if (Arg.rfind("--span-deadline-ms=", 0) == 0) {
      Opts.SpanDeadlineMs = static_cast<unsigned>(std::strtoul(
          Arg.c_str() + std::strlen("--span-deadline-ms="), nullptr, 10));
    } else if (Arg.rfind("--profile-out=", 0) == 0) {
      Opts.ProfileOut = Arg.substr(std::strlen("--profile-out="));
    } else if (Arg.rfind("--profile-hz=", 0) == 0) {
      Opts.ProfileHz = static_cast<unsigned>(std::strtoul(
          Arg.c_str() + std::strlen("--profile-hz="), nullptr, 10));
    } else if (Arg == "--deterministic-obs") {
      Opts.DeterministicObs = true;
    } else if (Arg == "--test-raise-signal=TERM") {
      Opts.TestRaiseSignal = SIGTERM;
    } else if (Arg == "--test-raise-signal=INT") {
      Opts.TestRaiseSignal = SIGINT;
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return false;
    } else if (Opts.Directory.empty()) {
      Opts.Directory = Arg;
    } else {
      std::fprintf(stderr, "extra positional argument '%s'\n", Arg.c_str());
      return false;
    }
  }
  return !Opts.Directory.empty();
}

/// Loads every source file with the language's extension under \p Root.
/// File bytes are mmapped (or read, when mapping fails) into \p FileArena,
/// which must outlive the returned repository: the SourceFiles reference
/// the arena's buffers instead of owning copies, so ingestion lexes
/// straight from the page cache.
corpus::Repository loadRepository(const std::string &Root,
                                  corpus::Language Lang, Arena &FileArena,
                                  size_t &Skipped) {
  corpus::Repository Repo;
  Repo.Name = Root;
  const char *Extension = Lang == corpus::Language::Python ? ".py" : ".java";
  std::error_code Ec;
  for (fs::recursive_directory_iterator It(Root, Ec), End; It != End;
       It.increment(Ec)) {
    if (Ec)
      break;
    if (!It->is_regular_file() || It->path().extension() != Extension)
      continue;
    std::string Path = It->path().string();
    std::optional<Arena::FileMapping> Mapped = FileArena.mapFile(Path);
    if (!Mapped) {
      ++Skipped;
      continue;
    }
    corpus::SourceFile F;
    F.Path = std::move(Path);
    F.View = Mapped->Contents;
    F.Mapped = true;
    Repo.Files.push_back(std::move(F));
  }
  return Repo;
}

bool writeTextFile(const std::string &Path, const std::string &Content) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out) {
    std::fprintf(stderr, "cannot open %s for writing\n", Path.c_str());
    return false;
  }
  Out << Content;
  return true;
}

/// Renders the non-span metrics (counters/gauges/histograms) as an aligned
/// two-column table, complementing telemetry::summaryTable()'s span view.
std::string countersTable() {
  TextTable Table;
  Table.setHeader({"counter", "value"});
  for (const auto &[Name, Value] : telemetry::metrics().snapshot())
    Table.addRow({Name, std::to_string(Value)});
  return Table.render();
}

/// --ledger sink for watchdog stalls. telemetry::StallHook is a plain
/// function pointer, so the target ledger rides in a file-scope pointer.
/// Stall records are detection output (they fire from whatever thread
/// closed the overdue span) and only appear when --span-deadline-ms is set;
/// the deterministic-obs byte-identity contract does not cover them.
ledger::RunLedger *GStallLedger = nullptr;

void stallToLedger(const char *Span, uint64_t DurationNs) {
  if (!GStallLedger)
    return;
  ledger::Record R;
  R.Event = "stall";
  R.Name = Span;
  R.Outcome = "deadline-exceeded";
  R.DurationUs = DurationNs / 1000;
  GStallLedger->append(R);
}

/// Interrupt-flush state: on SIGINT/SIGTERM the run ledger gets its
/// run_end record (outcome "interrupted") and the metrics exposition its
/// final write before the process exits 128+sig. Best-effort -- the
/// handler allocates, which a signal landing inside malloc could deadlock;
/// losing the flush there costs nothing the interrupt wasn't already
/// losing. The --test-raise-signal path raises from the main thread at a
/// safe point, so the ctest coverage is deterministic.
ledger::RunLedger *GFlushLedger = nullptr;
telemetry::MetricsSnapshotter *GFlushSnapshotter = nullptr;
uint64_t GRunStartNs = 0;
volatile std::sig_atomic_t GFlushing = 0;

void onInterrupt(int Sig) {
  if (GFlushing)
    _exit(128 + Sig);
  GFlushing = 1;
  if (GFlushLedger && GFlushLedger->isOpen()) {
    ledger::Record End;
    End.Event = "run_end";
    End.Name = Sig == SIGINT ? "SIGINT" : "SIGTERM";
    End.Outcome = "interrupted";
    End.DurationUs = (telemetry::nowNanos() - GRunStartNs) / 1000;
    GFlushLedger->append(End);
    GFlushLedger->close();
  }
  if (GFlushSnapshotter)
    GFlushSnapshotter->flushNow();
  _exit(128 + Sig);
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    printUsage(Argv[0]);
    return 2;
  }

  if (Opts.DeterministicObs) {
    // Zero clock + zero RSS sources: every duration_us / rss_delta_kb /
    // *_us series collapses to 0 and the schedule-dependent series are
    // dropped from the exposition below, so --ledger and --metrics-out
    // files are byte-identical at every --threads value.
    telemetry::setTimeSourceForTest(+[]() -> uint64_t { return 0; });
    memory::setRssSourceForTest(+[]() -> uint64_t { return 0; },
                                +[]() -> uint64_t { return 0; });
  }
  if (Opts.SpanDeadlineMs) {
    telemetry::setSpanDeadlineNs(static_cast<uint64_t>(Opts.SpanDeadlineMs) *
                                 1000000);
    telemetry::setStallHook(stallToLedger);
  }
  telemetry::PromExportOptions PromOpts;
  PromOpts.GitRev = telemetry::defaultMeta("namer-scan", 0).GitRev;
  if (Opts.DeterministicObs)
    PromOpts.ExcludePrefixes = {"pool.", "interner.shard_contention", "lock.",
                                "alloc."};
  std::unique_ptr<telemetry::MetricsSnapshotter> Snapshotter;
  if (!Opts.MetricsOut.empty()) {
    telemetry::MetricsSnapshotter::Options SnapOpts;
    SnapOpts.Path = Opts.MetricsOut;
    SnapOpts.IntervalMs = Opts.MetricsIntervalMs;
    SnapOpts.Export = PromOpts;
    Snapshotter = std::make_unique<telemetry::MetricsSnapshotter>(SnapOpts);
  }
  // Declared before the pipeline below so the pool's threads join before
  // the profiler uninstalls its span hook and dies.
  std::unique_ptr<prof::Profiler> Prof;
  if (!Opts.ProfileOut.empty()) {
    prof::ProfilerOptions PO;
    PO.SampleOnSpanClose = true;
    PO.SampleHz = Opts.DeterministicObs ? 0 : Opts.ProfileHz;
    Prof = std::make_unique<prof::Profiler>(PO);
  }

  size_t Skipped = 0;
  // Owns every scanned file's bytes (mmap regions or read slabs); must
  // stay alive until the pipeline is done reading the corpus.
  Arena FileArena;
  corpus::Repository Project =
      loadRepository(Opts.Directory, Opts.Lang, FileArena, Skipped);
  if (Project.Files.empty()) {
    std::fprintf(stderr, "no %s files under %s\n",
                 Opts.Lang == corpus::Language::Python ? ".py" : ".java",
                 Opts.Directory.c_str());
    return 1;
  }
  std::fprintf(stderr, "loaded %zu files from %s%s\n", Project.Files.size(),
               Opts.Directory.c_str(),
               Skipped ? " (some unreadable files skipped)" : "");

  // Ecosystem corpus + the scanned project as one extra repository.
  corpus::CorpusConfig Config;
  Config.Lang = Opts.Lang;
  corpus::Corpus BigCode = corpus::generateCorpus(Config);
  corpus::InspectionOracle Oracle(BigCode); // labels come from the corpus
  std::string ProjectName = Project.Name;
  BigCode.Repos.push_back(std::move(Project));

  PipelineConfig PC;
  PC.UseClassifier = Opts.UseClassifier;
  PC.Threads = Opts.Threads;
  if (Opts.MaxFileBytes)
    PC.Limits.MaxFileBytes = Opts.MaxFileBytes;
  if (Opts.MaxNesting)
    PC.Limits.MaxNestingDepth = Opts.MaxNesting;
  if (Opts.MineShards)
    PC.Miner.MineShards = Opts.MineShards;

  // The ledger outlives the pipeline (declared first; see setLedger). Its
  // run id folds the git revision with pipelineConfigHash(PC), which
  // excludes Threads/MineShards -- same id at every parallelism level.
  ledger::RunLedger Ledger;
  uint64_t RunStartNs = telemetry::nowNanos();
  uint64_t RunStartPeakKb = memory::peakRssKb();
  if (!Opts.LedgerFile.empty()) {
    if (!Ledger.open(Opts.LedgerFile,
                     ledger::RunLedger::makeRunId(PromOpts.GitRev,
                                                  pipelineConfigHash(PC)))) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   Opts.LedgerFile.c_str());
      return 1;
    }
    ledger::Record Start;
    Start.Event = "run_start";
    Start.Name = Opts.Directory;
    Ledger.append(Start);
    GStallLedger = &Ledger;
  }
  // Interrupt flush (see onInterrupt): armed once both sinks exist, so an
  // operator's Ctrl-C still leaves a well-formed ledger tail and a final
  // metrics exposition behind.
  GFlushLedger = &Ledger;
  GFlushSnapshotter = Snapshotter.get();
  GRunStartNs = RunStartNs;
  std::signal(SIGINT, onInterrupt);
  std::signal(SIGTERM, onInterrupt);

  NamerPipeline Namer(PC);
  if (Ledger.isOpen())
    Namer.setLedger(&Ledger);
  // Resolve the model source: explicit --model-in wins; otherwise an
  // existing --incremental-state store serves the warm path.
  std::string StatePath;
  if (!Opts.IncrementalState.empty()) {
    std::error_code Ec;
    fs::create_directories(Opts.IncrementalState, Ec);
    StatePath = (fs::path(Opts.IncrementalState) / "model.nmr").string();
  }
  std::string ModelLoadPath = Opts.ModelIn;
  if (ModelLoadPath.empty() && !StatePath.empty() && fs::exists(StatePath))
    ModelLoadPath = StatePath;

  try {
    if (!ModelLoadPath.empty()) {
      std::fprintf(stderr, "loading model from %s ...\n",
                   ModelLoadPath.c_str());
      Namer.loadModel(ModelLoadPath);
      Namer.scanWith(BigCode);
      std::fprintf(stderr,
                   "%zu patterns, %zu confusing word pairs (warm scan)\n",
                   Namer.patterns().size(), Namer.pairs().numPairs());
    } else {
      std::fprintf(stderr, "mining name patterns ...\n");
      Namer.build(BigCode);
      std::fprintf(stderr, "%zu patterns, %zu confusing word pairs\n",
                   Namer.patterns().size(), Namer.pairs().numPairs());
    }
  } catch (const model::ModelError &E) {
    std::fputs(model::formatModelError(E).c_str(), stderr);
    return 4;
  }
  if (Namer.numQuarantined()) {
    std::fprintf(stderr,
                 "\n--- quarantined files "
                 "-------------------------------------------\n%s",
                 Namer.quarantine().summaryTable().c_str());
  }

  // A warm model may already carry its trained classifier; only train when
  // the pipeline does not have one yet.
  if (Opts.UseClassifier && !Namer.classifierTrained()) {
    std::vector<size_t> Indices;
    std::vector<bool> Labels;
    collectBalancedLabels(Namer, Oracle, 120, /*Seed=*/1, Indices, Labels);
    if (Indices.size() >= 10) {
      std::vector<Violation> Labeled;
      for (size_t I : Indices)
        Labeled.push_back(Namer.violations()[I]);
      Namer.trainClassifier(Labeled, Labels);
    } else {
      std::fprintf(stderr,
                   "too few labeled violations; reporting unfiltered\n");
      Opts.UseClassifier = false;
    }
  }

  if (Opts.TestRaiseSignal)
    std::raise(Opts.TestRaiseSignal); // fixed point: build done, no reports

  // Findings inside the scanned tree only: selection, truncation and the
  // canonical emit order live in namer/ScanRun.h, shared with namer-serve
  // (the two front ends must print byte-identical report lines).
  FindingSelectOptions Select;
  Select.PathPrefix = Opts.Directory;
  Select.UseClassifier = Opts.UseClassifier;
  Select.MaxReports = Opts.MaxReports;
  std::vector<Explanation> Explanations = selectFindings(Namer, Select);

  size_t Explained = 0;
  for (const Explanation &E : Explanations) {
    std::fputs(renderReportLine(E.R).c_str(), stdout);
    if (Opts.Explain && Explained < Opts.ExplainLimit) {
      std::printf("%s", renderExplanation(E).c_str());
      ++Explained;
    }
  }
  std::fprintf(stderr, "%zu report(s) in %s\n", Explanations.size(),
               ProjectName.c_str());
  telemetry::count("scan.reports", Explanations.size());

  int Exit = 0;
  // Persist the model (with the freshly trained classifier and the
  // refreshed manifest) after the scan: --model-out explicitly, and the
  // --incremental-state store always, so the next run's diff is current.
  auto SaveModelTo = [&](const std::string &Path) {
    try {
      Namer.saveModel(Path);
      std::fprintf(stderr, "wrote %s (model, schema v%u)\n", Path.c_str(),
                   model::kSchemaVersion);
      return true;
    } catch (const model::ModelError &E) {
      std::fputs(model::formatModelError(E).c_str(), stderr);
      return false;
    }
  };
  if (!Opts.ModelOut.empty() && !SaveModelTo(Opts.ModelOut))
    Exit = 4;
  if (!StatePath.empty() && !SaveModelTo(StatePath))
    Exit = 4;
  if (Opts.Stats) {
    std::fprintf(stderr, "\n--- per-stage summary "
                         "-------------------------------------------\n%s",
                 telemetry::summaryTable().c_str());
    std::fprintf(stderr, "\n--- counters "
                         "---------------------------------------------------"
                         "\n%s",
                 countersTable().c_str());
    telemetry::RunMeta Meta = telemetry::defaultMeta(
        "namer-scan", ThreadPool::resolveWorkerCount(Opts.Threads));
    Meta.Extra.push_back({"quarantine", Namer.quarantine().json()});
    if (writeTextFile(Opts.StatsFile, telemetry::statsJson(Meta)))
      std::fprintf(stderr, "wrote %s\n", Opts.StatsFile.c_str());
    else
      Exit = 1;
  }
  if (!Opts.TraceFile.empty()) {
    if (writeTextFile(Opts.TraceFile, telemetry::chromeTraceJson()))
      std::fprintf(stderr, "wrote %s (load in chrome://tracing)\n",
                   Opts.TraceFile.c_str());
    else
      Exit = 1;
  }
  if (!Opts.SarifFile.empty() || !Opts.FindingsFile.empty()) {
    // The export meta echoes only schedule-independent configuration: the
    // files must be byte-identical at --threads=1 and --threads=8.
    ExportMeta Meta;
    Meta.Tool = "namer-scan";
    Meta.GitRev = telemetry::defaultMeta("namer-scan", 0).GitRev;
    Meta.Lang = Opts.Lang == corpus::Language::Python ? "python" : "java";
    Meta.UseClassifier = Opts.UseClassifier;
    Meta.MaxReports = Opts.MaxReports;
    Meta.QuarantinedFiles = Namer.numQuarantined();
    if (!Opts.SarifFile.empty()) {
      if (writeTextFile(Opts.SarifFile, sarifJson(Explanations, Meta)))
        std::fprintf(stderr, "wrote %s (SARIF 2.1.0)\n",
                     Opts.SarifFile.c_str());
      else
        Exit = 1;
    }
    if (!Opts.FindingsFile.empty()) {
      if (writeTextFile(Opts.FindingsFile, findingsJson(Explanations, Meta)))
        std::fprintf(stderr, "wrote %s (findings schema v%d)\n",
                     Opts.FindingsFile.c_str(), kFindingsSchemaVersion);
      else
        Exit = 1;
    }
  }
  if (Opts.FailOnFindings && !Explanations.empty()) {
    std::fprintf(stderr, "failing: %zu finding(s) survived (%s)\n",
                 Explanations.size(), "--fail-on-findings");
    Exit = 2;
  }
  if (Opts.Strict && Namer.numQuarantined()) {
    std::fprintf(stderr, "failing: %zu file(s) quarantined (--strict)\n",
                 Namer.numQuarantined());
    Exit = 3;
  }
  if (Ledger.isOpen()) {
    ledger::Record End;
    End.Event = "run_end";
    End.Name = Opts.Directory;
    End.Outcome = Exit == 0 ? "ok" : "exit-" + std::to_string(Exit);
    End.DurationUs = (telemetry::nowNanos() - RunStartNs) / 1000;
    End.RssDeltaKb = static_cast<int64_t>(memory::peakRssKb()) -
                     static_cast<int64_t>(RunStartPeakKb);
    Ledger.append(End);
    GStallLedger = nullptr;
    uint64_t Records = Ledger.records();
    Ledger.close();
    std::fprintf(stderr, "wrote %s (run ledger, %llu records)\n",
                 Opts.LedgerFile.c_str(),
                 static_cast<unsigned long long>(Records));
  }
  if (Prof) {
    if (Prof->writeFolded(Opts.ProfileOut))
      std::fprintf(stderr, "wrote %s (folded stacks, %llu samples)\n",
                   Opts.ProfileOut.c_str(),
                   static_cast<unsigned long long>(Prof->samples()));
    else {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   Opts.ProfileOut.c_str());
      Exit = 1;
    }
  }
  if (Snapshotter) {
    // Destruction joins the interval thread (when any) and writes the
    // final exposition -- flush-on-exit is the contract.
    GFlushSnapshotter = nullptr;
    Snapshotter.reset();
    std::fprintf(stderr, "wrote %s (prometheus text exposition)\n",
                 Opts.MetricsOut.c_str());
  }
  return Exit;
}
