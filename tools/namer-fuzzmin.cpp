//===- tools/namer-fuzzmin.cpp - Crash replay / minimization driver -------==//
//
// Feeds one file through the frontend (lexer + parser) and optionally the
// single-file ingestion pipeline, repeatedly:
//
//   namer-fuzzmin --lang=python|java [--iterations=N] [--max-nesting=N]
//                 [--pipeline] [--model] [--quiet] FILE
//
// The driver exists for the adversarial-input workflow (DESIGN.md, "Fault
// tolerance"): given an input that crashed or misbehaved under fuzzing or
// in a real scan, replay it deterministically under a debugger or
// sanitizer, and use it as the "interestingness" test for an external
// minimizer (the process exits by signal on a crash, so `namer-fuzzmin
// FILE` is directly usable as a creduce/C-Vise oracle).
//
// Exit codes: 0 clean parse, 1 unreadable file / bad usage, 4 the file was
// quarantined by the pipeline (--pipeline only). Parser diagnostics alone
// do NOT change the exit code -- recoverable diags are expected on
// adversarial inputs; the contract being tested is "no crash".
//
// --model switches the input format: FILE is treated as a model-store
// image (ModelStore.h) and replayed through model::parse instead of the
// frontend. Exit 0 = parsed cleanly, 4 = rejected with a typed ModelError
// (the expected outcome for adversarial bytes); a crash is the bug. This
// makes `namer-fuzzmin --model FILE` the oracle for minimizing corrupt
// model files exactly as plain FILE is for sources.
//
//===----------------------------------------------------------------------===//

#include "ast/Tree.h"
#include "frontend/java/JavaParser.h"
#include "frontend/python/PythonParser.h"
#include "namer/ModelStore.h"
#include "namer/Pipeline.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

using namespace namer;

namespace {

struct Options {
  corpus::Language Lang = corpus::Language::Python;
  /// Replay count; >1 shakes out state that survives a single pass.
  unsigned Iterations = 3;
  unsigned MaxNesting = 0; // 0 = parser default
  /// Also run the file through NamerPipeline::build as a one-file corpus,
  /// exercising the ingestion budgets and quarantine path.
  bool Pipeline = false;
  /// Treat FILE as a model-store image and replay it through model::parse.
  bool Model = false;
  bool Quiet = false;
  std::string File;
};

void printUsage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--lang=python|java] [--iterations=N] "
               "[--max-nesting=N] [--pipeline] [--model] [--quiet] FILE\n",
               Argv0);
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--lang=python") {
      Opts.Lang = corpus::Language::Python;
    } else if (Arg == "--lang=java") {
      Opts.Lang = corpus::Language::Java;
    } else if (Arg.rfind("--iterations=", 0) == 0) {
      Opts.Iterations = static_cast<unsigned>(std::strtoul(
          Arg.c_str() + std::strlen("--iterations="), nullptr, 10));
    } else if (Arg.rfind("--max-nesting=", 0) == 0) {
      Opts.MaxNesting = static_cast<unsigned>(std::strtoul(
          Arg.c_str() + std::strlen("--max-nesting="), nullptr, 10));
    } else if (Arg == "--pipeline") {
      Opts.Pipeline = true;
    } else if (Arg == "--model") {
      Opts.Model = true;
    } else if (Arg == "--quiet") {
      Opts.Quiet = true;
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", Arg.c_str());
      return false;
    } else if (Opts.File.empty()) {
      Opts.File = Arg;
    } else {
      return false;
    }
  }
  return !Opts.File.empty() && Opts.Iterations != 0;
}

/// One frontend pass; returns a per-kind diag histogram for reporting.
std::map<std::string, size_t> parseOnce(const Options &Opts,
                                        std::string_view Text,
                                        size_t &NumDiags, size_t &NumNodes) {
  AstContext Ctx;
  std::map<std::string, size_t> ByKind;
  if (Opts.Lang == corpus::Language::Python) {
    python::ParseOptions PO;
    if (Opts.MaxNesting)
      PO.MaxNestingDepth = Opts.MaxNesting;
    python::ParseResult R = python::parsePython(Text, Ctx, PO);
    NumDiags = R.Diags.size();
    NumNodes = R.Module.size();
    for (const frontend::Diag &D : R.Diags)
      ++ByKind[std::string(frontend::diagKindName(D.Kind))];
  } else {
    java::ParseOptions JO;
    if (Opts.MaxNesting)
      JO.MaxNestingDepth = Opts.MaxNesting;
    java::ParseResult R = java::parseJava(Text, Ctx, JO);
    NumDiags = R.Diags.size();
    NumNodes = R.Module.size();
    for (const frontend::Diag &D : R.Diags)
      ++ByKind[std::string(frontend::diagKindName(D.Kind))];
  }
  return ByKind;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    printUsage(Argv[0]);
    return 1;
  }

  std::ifstream In(Opts.File, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "cannot read %s\n", Opts.File.c_str());
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();

  if (Opts.Model) {
    // Model replay: every iteration must either parse cleanly or reject
    // typed. Any signal/abort is the crash being minimized.
    int ModelExit = 0;
    for (unsigned Iter = 0; Iter != Opts.Iterations; ++Iter) {
      try {
        model::ModelFile F = model::parse(Text);
        if (!Opts.Quiet && Iter == 0)
          std::printf("%s: %zu bytes, model ok: %zu strings, %zu paths, "
                      "%zu patterns, %zu pairs, %zu files\n",
                      Opts.File.c_str(), Text.size(), F.Strings.size(),
                      F.Paths.size(), F.Patterns.size(), F.Pairs.size(),
                      F.Manifest.size());
      } catch (const model::ModelError &E) {
        if (!Opts.Quiet && Iter == 0)
          std::printf("%s: %zu bytes, rejected typed: %s\n",
                      Opts.File.c_str(), Text.size(), E.what());
        ModelExit = 4;
      }
    }
    return ModelExit;
  }

  for (unsigned Iter = 0; Iter != Opts.Iterations; ++Iter) {
    size_t NumDiags = 0, NumNodes = 0;
    std::map<std::string, size_t> ByKind =
        parseOnce(Opts, Text, NumDiags, NumNodes);
    if (!Opts.Quiet && Iter == 0) {
      std::printf("%s: %zu bytes, %zu nodes, %zu diag(s)\n",
                  Opts.File.c_str(), Text.size(), NumNodes, NumDiags);
      for (const auto &[Kind, Count] : ByKind)
        std::printf("  %s: %zu\n", Kind.c_str(), Count);
    }
  }

  int Exit = 0;
  if (Opts.Pipeline) {
    corpus::Corpus One;
    One.Lang = Opts.Lang;
    corpus::Repository Repo;
    Repo.Name = "fuzzmin";
    Repo.Files.push_back(corpus::SourceFile{Opts.File, Text, {}});
    One.Repos.push_back(std::move(Repo));

    PipelineConfig PC;
    PC.UseClassifier = false;
    PC.Threads = 1;
    if (Opts.MaxNesting)
      PC.Limits.MaxNestingDepth = Opts.MaxNesting;
    NamerPipeline Namer(PC);
    Namer.build(One);
    if (Namer.numQuarantined()) {
      if (!Opts.Quiet)
        std::fprintf(stderr, "%s", Namer.quarantine().summaryTable().c_str());
      Exit = 4;
    } else if (!Opts.Quiet) {
      std::printf("pipeline: ingested cleanly\n");
    }
  }
  return Exit;
}
