//===- tools/namer-serve.cpp - Long-lived namer scan service --------------==//
//
// Serves scan requests against a saved model over line-delimited JSON:
//
//   namer-serve --model=FILE [--lang=python|java]
//               (--stdin-jsonl | --socket=PATH)
//               [--workers=N] [--max-queue=N] [--max-per-tenant=N]
//               [--max-rss-kb=N] [--default-deadline-ms=N]
//               [--watch-model[=MS]] [--drain-wait-ms=N]
//               [--no-ecosystem-corpus] [--corpus-repos=N]
//               [--ledger=FILE] [--metrics-out=FILE]
//               [--metrics-interval-ms=N]
//
// One request object per line in, one response object per line out (see
// src/service/Protocol.h). --stdin-jsonl serves stdin->stdout -- the mode
// tests and local tooling use; no networking involved. --socket listens on
// a Unix domain socket, one thread per connection, same protocol.
//
// Fault tolerance (DESIGN.md, "Scan service"): admission control sheds
// load with typed `overloaded` responses; per-request deadlines turn into
// typed `deadline-exceeded` with partial work discarded; SIGHUP (or
// --watch-model polling, or a "swap" request) hot-swaps the model
// atomically while in-flight scans finish on the snapshot they pinned;
// SIGTERM/SIGINT drains gracefully -- stop admitting, wait
// --drain-wait-ms, cancel stragglers, flush ledger + metrics, exit 0.
//
// Responses are emitted in request order (a reorder buffer holds completed
// ones until their predecessors finish), so piped sessions are
// deterministic even with full request concurrency.
//
//===----------------------------------------------------------------------===//

#include "service/ScanService.h"
#include "support/MemoryTracker.h"
#include "support/RunLedger.h"
#include "support/Telemetry.h"

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <poll.h>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace namer;
using namespace namer::service;

namespace {

struct Options {
  std::string Model;
  corpus::Language Lang = corpus::Language::Python;
  bool StdinJsonl = false;
  std::string SocketPath;
  unsigned Workers = 4;
  size_t MaxQueue = 64;
  size_t MaxPerTenant = 8;
  uint64_t MaxRssKb = 0;
  uint64_t DefaultDeadlineMs = 0;
  /// --watch-model[=MS]: poll the model file's mtime every MS (default
  /// 1000) and hot-swap on change. SIGHUP swaps regardless.
  unsigned WatchModelMs = 0;
  uint64_t DrainWaitMs = 5000;
  bool EcosystemCorpus = true;
  /// --corpus-repos=N: size of the generated ecosystem corpus (must match
  /// what the model was mined over; 0 = the generator default).
  size_t CorpusRepos = 0;
  std::string LedgerFile;
  std::string MetricsOut;
  unsigned MetricsIntervalMs = 0;
};

void printUsage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --model=FILE (--stdin-jsonl | --socket=PATH) "
      "[--lang=python|java] [--workers=N] [--max-queue=N] "
      "[--max-per-tenant=N] [--max-rss-kb=N] [--default-deadline-ms=N] "
      "[--watch-model[=MS]] [--drain-wait-ms=N] [--no-ecosystem-corpus] "
      "[--corpus-repos=N] [--ledger=FILE] [--metrics-out=FILE] "
      "[--metrics-interval-ms=N]\n",
      Argv0);
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto UnsignedOf = [&Arg](const char *Flag) {
      return std::strtoull(Arg.c_str() + std::strlen(Flag), nullptr, 10);
    };
    if (Arg.rfind("--model=", 0) == 0) {
      Opts.Model = Arg.substr(std::strlen("--model="));
    } else if (Arg == "--lang=python") {
      Opts.Lang = corpus::Language::Python;
    } else if (Arg == "--lang=java") {
      Opts.Lang = corpus::Language::Java;
    } else if (Arg == "--stdin-jsonl") {
      Opts.StdinJsonl = true;
    } else if (Arg.rfind("--socket=", 0) == 0) {
      Opts.SocketPath = Arg.substr(std::strlen("--socket="));
    } else if (Arg.rfind("--workers=", 0) == 0) {
      Opts.Workers = static_cast<unsigned>(UnsignedOf("--workers="));
    } else if (Arg.rfind("--max-queue=", 0) == 0) {
      Opts.MaxQueue = static_cast<size_t>(UnsignedOf("--max-queue="));
    } else if (Arg.rfind("--max-per-tenant=", 0) == 0) {
      Opts.MaxPerTenant =
          static_cast<size_t>(UnsignedOf("--max-per-tenant="));
    } else if (Arg.rfind("--max-rss-kb=", 0) == 0) {
      Opts.MaxRssKb = UnsignedOf("--max-rss-kb=");
    } else if (Arg.rfind("--default-deadline-ms=", 0) == 0) {
      Opts.DefaultDeadlineMs = UnsignedOf("--default-deadline-ms=");
    } else if (Arg == "--watch-model") {
      Opts.WatchModelMs = 1000;
    } else if (Arg.rfind("--watch-model=", 0) == 0) {
      Opts.WatchModelMs =
          static_cast<unsigned>(UnsignedOf("--watch-model="));
      if (Opts.WatchModelMs == 0)
        Opts.WatchModelMs = 1000;
    } else if (Arg.rfind("--drain-wait-ms=", 0) == 0) {
      Opts.DrainWaitMs = UnsignedOf("--drain-wait-ms=");
    } else if (Arg == "--no-ecosystem-corpus") {
      Opts.EcosystemCorpus = false;
    } else if (Arg.rfind("--corpus-repos=", 0) == 0) {
      Opts.CorpusRepos = static_cast<size_t>(UnsignedOf("--corpus-repos="));
    } else if (Arg.rfind("--ledger=", 0) == 0) {
      Opts.LedgerFile = Arg.substr(std::strlen("--ledger="));
    } else if (Arg.rfind("--metrics-out=", 0) == 0) {
      Opts.MetricsOut = Arg.substr(std::strlen("--metrics-out="));
    } else if (Arg.rfind("--metrics-interval-ms=", 0) == 0) {
      Opts.MetricsIntervalMs =
          static_cast<unsigned>(UnsignedOf("--metrics-interval-ms="));
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return false;
    }
  }
  if (Opts.Model.empty())
    return false;
  // Exactly one listening mode.
  return Opts.StdinJsonl != !Opts.SocketPath.empty();
}

/// Signal flags, polled by the accept loops. sig_atomic_t + no work in the
/// handlers: the drain/flush runs on the main thread.
volatile std::sig_atomic_t GTerm = 0;
volatile std::sig_atomic_t GHup = 0;

void onTerm(int) { GTerm = 1; }
void onHup(int) { GHup = 1; }

/// Emits responses in request order no matter what order scans finish in:
/// completed responses park in a map keyed by their admission sequence
/// until every earlier one has been written. Keeps piped sessions
/// deterministic under full concurrency.
class OrderedWriter {
public:
  explicit OrderedWriter(std::FILE *Out) : Out(Out) {}

  /// Reserves the next slot in the output order.
  uint64_t reserve() {
    std::lock_guard<std::mutex> L(M);
    return NextTicket++;
  }

  void complete(uint64_t Ticket, std::string Line) {
    std::lock_guard<std::mutex> L(M);
    Pending.emplace(Ticket, std::move(Line));
    while (!Pending.empty() && Pending.begin()->first == NextWrite) {
      std::fputs(Pending.begin()->second.c_str(), Out);
      Pending.erase(Pending.begin());
      ++NextWrite;
    }
    std::fflush(Out);
    if (Pending.empty())
      Cv.notify_all();
  }

  /// Blocks until every reserved slot has been written.
  void flushAll() {
    std::unique_lock<std::mutex> L(M);
    Cv.wait(L, [&] { return NextWrite == NextTicket; });
  }

private:
  std::FILE *Out;
  std::mutex M;
  std::condition_variable Cv;
  uint64_t NextTicket = 0;
  uint64_t NextWrite = 0;
  std::map<uint64_t, std::string> Pending;
};

/// Handles one request line: control methods answer synchronously, scans
/// go through the service. Every path completes the writer ticket exactly
/// once.
void handleLine(const std::string &Line, ScanService &Service,
                OrderedWriter &Writer, std::atomic<bool> &ShutdownRequested) {
  uint64_t Ticket = Writer.reserve();
  Request R;
  std::string Error;
  if (!parseRequest(Line, R, &Error)) {
    Response Resp;
    Resp.Id = R.Id;
    Resp.St = Status::InvalidRequest;
    Resp.Detail = Error;
    telemetry::count("serve.status.invalid-request");
    Writer.complete(Ticket, renderResponse(Resp));
    return;
  }
  if (R.Method == "scan") {
    Service.submit(std::move(R), [&Writer, Ticket](Response Resp) {
      Writer.complete(Ticket, renderResponse(Resp));
    });
    return;
  }
  Response Resp;
  Resp.Id = R.Id;
  if (R.Method == "ping") {
    Resp.Extra = "\"model_version\":" +
                 std::to_string(Service.models().current()->Version);
  } else if (R.Method == "stats") {
    Resp.Extra =
        "\"in_flight\":" + std::to_string(Service.inFlight()) +
        ",\"model_version\":" +
        std::to_string(Service.models().current()->Version) +
        ",\"model_swaps\":" + std::to_string(Service.models().swaps());
  } else if (R.Method == "swap") {
    bool Ok = Service.models().swapNow();
    Resp.Extra = "\"model_version\":" +
                 std::to_string(Service.models().current()->Version);
    if (!Ok) {
      Resp.St = Status::ModelError;
      Resp.Detail = "swap failed; previous model stays current";
    }
  } else if (R.Method == "shutdown") {
    ShutdownRequested.store(true, std::memory_order_release);
  }
  telemetry::count("serve.status." + std::string(statusName(Resp.St)));
  Writer.complete(Ticket, renderResponse(Resp));
}

/// stdin -> stdout JSONL session. poll()s stdin with a 100ms tick so
/// signal flags and the model watcher stay responsive between lines.
int serveStdin(ScanService &Service, const Options &Opts) {
  OrderedWriter Writer(stdout);
  std::atomic<bool> ShutdownRequested{false};
  std::string Buffer;
  uint64_t SinceLastPollMs = 0;
  bool Eof = false;
  while (!Eof && !GTerm &&
         !ShutdownRequested.load(std::memory_order_acquire)) {
    if (GHup) {
      GHup = 0;
      Service.models().swapNow();
    }
    if (Opts.WatchModelMs && SinceLastPollMs >= Opts.WatchModelMs) {
      SinceLastPollMs = 0;
      Service.models().pollAndSwap();
    }
    struct pollfd Pfd = {0 /*stdin*/, POLLIN, 0};
    int Ready = ::poll(&Pfd, 1, 100);
    if (Ready < 0) {
      if (errno == EINTR)
        continue; // signal: loop re-checks the flags
      break;
    }
    if (Ready == 0) {
      SinceLastPollMs += 100;
      continue;
    }
    char Chunk[4096];
    ssize_t N = ::read(0, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (N == 0) {
      Eof = true;
      break;
    }
    Buffer.append(Chunk, static_cast<size_t>(N));
    size_t Start = 0;
    for (size_t Nl; (Nl = Buffer.find('\n', Start)) != std::string::npos;
         Start = Nl + 1) {
      std::string LineStr = Buffer.substr(Start, Nl - Start);
      if (!LineStr.empty())
        handleLine(LineStr, Service, Writer, ShutdownRequested);
      if (ShutdownRequested.load(std::memory_order_acquire))
        break;
    }
    Buffer.erase(0, Start);
  }
  // EOF / SIGTERM / shutdown request: answer everything already admitted,
  // then drain.
  Writer.flushAll();
  size_t Cancelled = Service.drain(Opts.DrainWaitMs);
  if (Cancelled)
    std::fprintf(stderr, "drain: cancelled %zu in-flight scan(s)\n",
                 Cancelled);
  return 0;
}

/// One connected Unix-socket client: same JSONL session as stdin mode,
/// with a per-connection ordered writer.
void serveConnection(int Fd, ScanService &Service) {
  std::FILE *Out = ::fdopen(::dup(Fd), "w");
  if (!Out)
    return;
  OrderedWriter Writer(Out);
  std::atomic<bool> ShutdownRequested{false};
  std::string Buffer;
  char Chunk[4096];
  for (;;) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    Buffer.append(Chunk, static_cast<size_t>(N));
    size_t Start = 0;
    for (size_t Nl; (Nl = Buffer.find('\n', Start)) != std::string::npos;
         Start = Nl + 1) {
      std::string LineStr = Buffer.substr(Start, Nl - Start);
      if (!LineStr.empty())
        handleLine(LineStr, Service, Writer, ShutdownRequested);
    }
    Buffer.erase(0, Start);
    if (ShutdownRequested.load(std::memory_order_acquire)) {
      GTerm = 1; // a shutdown request over any connection stops the server
      break;
    }
  }
  Writer.flushAll();
  std::fclose(Out);
  ::close(Fd);
}

int serveSocket(ScanService &Service, const Options &Opts) {
  int Listen = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listen < 0) {
    std::perror("socket");
    return 1;
  }
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "socket path too long\n");
    ::close(Listen);
    return 1;
  }
  std::strncpy(Addr.sun_path, Opts.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  ::unlink(Opts.SocketPath.c_str());
  if (::bind(Listen, reinterpret_cast<struct sockaddr *>(&Addr),
             sizeof(Addr)) != 0 ||
      ::listen(Listen, 16) != 0) {
    std::perror("bind/listen");
    ::close(Listen);
    return 1;
  }
  std::fprintf(stderr, "listening on %s\n", Opts.SocketPath.c_str());
  std::vector<std::thread> Connections;
  uint64_t SinceLastPollMs = 0;
  while (!GTerm) {
    if (GHup) {
      GHup = 0;
      Service.models().swapNow();
    }
    if (Opts.WatchModelMs && SinceLastPollMs >= Opts.WatchModelMs) {
      SinceLastPollMs = 0;
      Service.models().pollAndSwap();
    }
    struct pollfd Pfd = {Listen, POLLIN, 0};
    int Ready = ::poll(&Pfd, 1, 100);
    if (Ready < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (Ready == 0) {
      SinceLastPollMs += 100;
      continue;
    }
    int Fd = ::accept(Listen, nullptr, nullptr);
    if (Fd < 0)
      continue;
    Connections.emplace_back(
        [Fd, &Service] { serveConnection(Fd, Service); });
  }
  ::close(Listen);
  ::unlink(Opts.SocketPath.c_str());
  for (std::thread &T : Connections)
    T.join();
  size_t Cancelled = Service.drain(Opts.DrainWaitMs);
  if (Cancelled)
    std::fprintf(stderr, "drain: cancelled %zu in-flight scan(s)\n",
                 Cancelled);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    printUsage(Argv[0]);
    return 2;
  }

  std::signal(SIGTERM, onTerm);
  std::signal(SIGINT, onTerm);
  std::signal(SIGHUP, onHup);
  std::signal(SIGPIPE, SIG_IGN);

  telemetry::PromExportOptions PromOpts;
  PromOpts.GitRev = telemetry::defaultMeta("namer-serve", 0).GitRev;
  std::unique_ptr<telemetry::MetricsSnapshotter> Snapshotter;
  if (!Opts.MetricsOut.empty()) {
    telemetry::MetricsSnapshotter::Options SnapOpts;
    SnapOpts.Path = Opts.MetricsOut;
    SnapOpts.IntervalMs = Opts.MetricsIntervalMs;
    SnapOpts.Export = PromOpts;
    Snapshotter = std::make_unique<telemetry::MetricsSnapshotter>(SnapOpts);
  }

  ServiceConfig SC;
  SC.ModelPath = Opts.Model;
  SC.Lang = Opts.Lang;
  SC.ScanWorkers = Opts.Workers;
  SC.Admission.MaxQueueDepth = Opts.MaxQueue;
  SC.Admission.MaxPerTenant = Opts.MaxPerTenant;
  SC.Admission.MaxRssKb = Opts.MaxRssKb;
  SC.DefaultDeadlineMs = Opts.DefaultDeadlineMs;
  SC.WithEcosystemCorpus = Opts.EcosystemCorpus;
  if (Opts.CorpusRepos)
    SC.BaseCorpus.NumRepos = Opts.CorpusRepos;

  ledger::RunLedger Ledger;
  uint64_t RunStartNs = telemetry::nowNanos();
  if (!Opts.LedgerFile.empty()) {
    if (!Ledger.open(Opts.LedgerFile,
                     ledger::RunLedger::makeRunId(PromOpts.GitRev, 0))) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   Opts.LedgerFile.c_str());
      return 1;
    }
    ledger::Record Start;
    Start.Event = "run_start";
    Start.Name = Opts.Model;
    Ledger.append(Start);
  }

  ScanService Service(SC);
  try {
    Service.start();
  } catch (const model::ModelError &E) {
    std::fputs(model::formatModelError(E).c_str(), stderr);
    return 4;
  }
  std::fprintf(stderr, "model %s loaded (version %llu)\n",
               Opts.Model.c_str(),
               static_cast<unsigned long long>(
                   Service.models().current()->Version));

  int Exit = Opts.StdinJsonl ? serveStdin(Service, Opts)
                             : serveSocket(Service, Opts);

  if (Ledger.isOpen()) {
    ledger::Record End;
    End.Event = "run_end";
    End.Name = Opts.Model;
    End.Outcome = GTerm ? "drained" : "ok";
    End.DurationUs = (telemetry::nowNanos() - RunStartNs) / 1000;
    Ledger.append(End);
    Ledger.close();
  }
  if (Snapshotter)
    Snapshotter.reset(); // final exposition write (flush-on-exit contract)
  return Exit;
}
