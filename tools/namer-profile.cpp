//===- tools/namer-profile.cpp - Folded-stack profile reports -------------==//
///
/// \file
/// Renders reports over the collapsed-stack files the in-process profiler
/// writes (`namer-scan --profile-out`, bench --profile-out; one
/// `frame;frame;... count` line per distinct stack, support/Profiler.h):
///
///   namer-profile [options] <profile.folded>
///   namer-profile --diff <old.folded> <new.folded> [options]
///
/// The default report is a top-N table of frames by self samples (samples
/// whose stack ends in the frame) next to cumulative samples (stacks
/// containing the frame); --inverted adds the inverted-callers view
/// (which callers account for each hot frame's samples). --diff compares
/// two profiles frame by frame and, when --threshold is given, exits 5 if
/// any frame's self samples grew past it -- the before/after gate for perf
/// PRs, sharing namer-statdiff's exit-code contract.
///
/// All reports are byte-deterministic functions of the input files, so
/// profiles recorded under `--deterministic-obs` produce byte-identical
/// reports at every --threads value.
///
/// Exit codes: 0 ok, 1 I/O or parse failure, 2 usage error, 5 regression
/// (diff mode with --threshold only).
///
//===----------------------------------------------------------------------===//

#include "support/TextTable.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

using namer::TextTable;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitIo = 1;
constexpr int kExitUsage = 2;
constexpr int kExitRegression = 5;

struct Options {
  bool Diff = false;
  bool Inverted = false;
  size_t Top = 20; ///< rows per table; 0 = unlimited
  /// Diff gate: max relative self-sample increase per frame before exit 5.
  /// Report-only when unset.
  std::optional<double> Threshold;
  /// Diff gate noise floor: frames whose baseline self samples are below
  /// this are never regressions.
  double MinSamples = 10.0;
  std::vector<std::string> Paths;
};

void usage(std::FILE *To) {
  std::fprintf(
      To,
      "usage: namer-profile [options] <profile.folded>\n"
      "       namer-profile --diff <old.folded> <new.folded> [options]\n"
      "\n"
      "Reports over collapsed-stack profiles (namer-scan --profile-out).\n"
      "\n"
      "options:\n"
      "  --top=N         rows per table (default 20, 0 = all)\n"
      "  --inverted      add the inverted-callers view under the table\n"
      "  --diff          compare two profiles (old new) frame by frame\n"
      "  --threshold=F   diff gate: exit 5 when a frame's self samples grew\n"
      "                  by more than this relative fraction (e.g. 0.5)\n"
      "  --min-samples=N diff gate noise floor on baseline self samples\n"
      "                  (default 10)\n"
      "  -h, --help      this text\n"
      "\n"
      "exit codes: 0 ok, 1 io/parse error, 2 usage error, 5 regression\n");
}

/// Per-frame aggregates of one profile.
struct FrameStats {
  uint64_t Self = 0; ///< samples whose stack ends in this frame
  uint64_t Cum = 0;  ///< samples whose stack contains this frame
  /// Immediate caller -> samples arriving through it ("(root)" for stacks
  /// starting at this frame).
  std::map<std::string, uint64_t> Callers;
};

struct Profile {
  uint64_t TotalSamples = 0;
  std::map<std::string, FrameStats> Frames;
};

/// Parses one folded file; false (with a message) on I/O or format errors.
bool loadProfile(const std::string &Path, Profile &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "namer-profile: cannot read %s\n", Path.c_str());
    return false;
  }
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    size_t Space = Line.rfind(' ');
    char *End = nullptr;
    uint64_t Count =
        Space == std::string::npos
            ? 0
            : std::strtoull(Line.c_str() + Space + 1, &End, 10);
    if (Space == std::string::npos || Space == 0 || !End || *End != '\0') {
      std::fprintf(stderr, "namer-profile: %s:%zu: not a folded-stack line\n",
                   Path.c_str(), LineNo);
      return false;
    }
    std::string_view Stack(Line.c_str(), Space);
    Out.TotalSamples += Count;
    std::vector<std::string_view> Frames;
    for (size_t At = 0; At <= Stack.size();) {
      size_t Semi = Stack.find(';', At);
      if (Semi == std::string_view::npos)
        Semi = Stack.size();
      Frames.push_back(Stack.substr(At, Semi - At));
      At = Semi + 1;
    }
    std::set<std::string_view> Seen; // count recursion once for cum
    for (size_t F = 0; F != Frames.size(); ++F) {
      FrameStats &S = Out.Frames[std::string(Frames[F])];
      if (Seen.insert(Frames[F]).second)
        S.Cum += Count;
      if (F + 1 == Frames.size())
        S.Self += Count;
      S.Callers[F == 0 ? std::string("(root)") : std::string(Frames[F - 1])] +=
          Count;
    }
  }
  return true;
}

/// Frames of \p P ordered hottest first: self samples descending, ties by
/// name, truncated to \p Top (0 = all).
std::vector<const std::pair<const std::string, FrameStats> *>
hottestFrames(const Profile &P, size_t Top) {
  std::vector<const std::pair<const std::string, FrameStats> *> Order;
  for (const auto &Entry : P.Frames)
    Order.push_back(&Entry);
  std::stable_sort(Order.begin(), Order.end(),
                   [](const auto *A, const auto *B) {
                     if (A->second.Self != B->second.Self)
                       return A->second.Self > B->second.Self;
                     return A->first < B->first;
                   });
  if (Top && Order.size() > Top)
    Order.resize(Top);
  return Order;
}

std::string percentOf(uint64_t Part, uint64_t Whole) {
  return Whole ? TextTable::formatPercent(double(Part) / double(Whole), 1)
               : "-";
}

int report(const Options &Opts) {
  Profile P;
  if (!loadProfile(Opts.Paths[0], P))
    return kExitIo;

  auto Order = hottestFrames(P, Opts.Top);
  std::printf("%s: %llu samples, %zu frames, %zu shown\n",
              Opts.Paths[0].c_str(),
              static_cast<unsigned long long>(P.TotalSamples),
              P.Frames.size(), Order.size());
  TextTable Table;
  Table.setHeader({"frame", "self", "self%", "cum", "cum%"});
  for (const auto *Entry : Order)
    Table.addRow({Entry->first, std::to_string(Entry->second.Self),
                  percentOf(Entry->second.Self, P.TotalSamples),
                  std::to_string(Entry->second.Cum),
                  percentOf(Entry->second.Cum, P.TotalSamples)});
  std::printf("%s", Table.render().c_str());

  if (Opts.Inverted) {
    std::printf("\ninverted callers (hottest frames, callers by weight):\n");
    for (const auto *Entry : Order) {
      std::printf("%s (self %llu)\n", Entry->first.c_str(),
                  static_cast<unsigned long long>(Entry->second.Self));
      // Callers sorted by weight descending, ties by name.
      std::vector<std::pair<std::string, uint64_t>> Callers(
          Entry->second.Callers.begin(), Entry->second.Callers.end());
      std::stable_sort(Callers.begin(), Callers.end(),
                       [](const auto &A, const auto &B) {
                         if (A.second != B.second)
                           return A.second > B.second;
                         return A.first < B.first;
                       });
      for (const auto &[Caller, Count] : Callers)
        std::printf("  <- %s %llu\n", Caller.c_str(),
                    static_cast<unsigned long long>(Count));
    }
  }
  return kExitOk;
}

int diff(const Options &Opts) {
  Profile Old, New;
  if (!loadProfile(Opts.Paths[0], Old) || !loadProfile(Opts.Paths[1], New))
    return kExitIo;

  // Union of frames, ordered by absolute self delta descending (ties by
  // name) so the biggest movers lead the table.
  std::set<std::string> Names;
  for (const auto &[Name, S] : Old.Frames)
    Names.insert(Name);
  for (const auto &[Name, S] : New.Frames)
    Names.insert(Name);

  struct Row {
    std::string Name;
    uint64_t OldSelf = 0, NewSelf = 0;
  };
  std::vector<Row> Rows;
  for (const std::string &Name : Names) {
    auto OldIt = Old.Frames.find(Name);
    auto NewIt = New.Frames.find(Name);
    Rows.push_back({Name, OldIt == Old.Frames.end() ? 0 : OldIt->second.Self,
                    NewIt == New.Frames.end() ? 0 : NewIt->second.Self});
  }
  auto AbsDelta = [](const Row &R) {
    return R.NewSelf > R.OldSelf ? R.NewSelf - R.OldSelf
                                 : R.OldSelf - R.NewSelf;
  };
  std::stable_sort(Rows.begin(), Rows.end(),
                   [&](const Row &A, const Row &B) {
                     if (AbsDelta(A) != AbsDelta(B))
                       return AbsDelta(A) > AbsDelta(B);
                     return A.Name < B.Name;
                   });

  std::printf("diff %s (%llu samples) -> %s (%llu samples)\n",
              Opts.Paths[0].c_str(),
              static_cast<unsigned long long>(Old.TotalSamples),
              Opts.Paths[1].c_str(),
              static_cast<unsigned long long>(New.TotalSamples));
  TextTable Table;
  Table.setHeader({"frame", "old self", "new self", "delta", "rel"});
  size_t Shown = 0;
  for (const Row &R : Rows) {
    if (Opts.Top && Shown == Opts.Top)
      break;
    ++Shown;
    int64_t Delta = static_cast<int64_t>(R.NewSelf) -
                    static_cast<int64_t>(R.OldSelf);
    std::string Rel =
        R.OldSelf ? TextTable::formatPercent(double(Delta) / double(R.OldSelf),
                                             1)
                  : (R.NewSelf ? "new" : "-");
    Table.addRow({R.Name, std::to_string(R.OldSelf),
                  std::to_string(R.NewSelf),
                  (Delta >= 0 ? "+" : "") + std::to_string(Delta), Rel});
  }
  std::printf("%s", Table.render().c_str());

  if (!Opts.Threshold)
    return kExitOk;
  // Gate: a frame regressed when its self samples grew past the threshold
  // and the baseline was above the noise floor (brand-new frames gate on
  // the floor alone).
  size_t Regressions = 0;
  for (const Row &R : Rows) {
    if (R.NewSelf <= R.OldSelf)
      continue;
    double Base = std::max(double(R.OldSelf), Opts.MinSamples);
    double Rel = double(R.NewSelf - R.OldSelf) / Base;
    if (Rel <= *Opts.Threshold)
      continue;
    ++Regressions;
    std::printf("REGRESSION frame %s: self %llu -> %llu (+%.1f%%, "
                "threshold %.0f%%)\n",
                R.Name.c_str(), static_cast<unsigned long long>(R.OldSelf),
                static_cast<unsigned long long>(R.NewSelf), 100.0 * Rel,
                100.0 * *Opts.Threshold);
  }
  if (Regressions) {
    std::printf("namer-profile: %zu frame regression(s)\n", Regressions);
    return kExitRegression;
  }
  std::printf("namer-profile: ok (no frame past threshold)\n");
  return kExitOk;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I != Argc; ++I) {
    std::string_view Arg = Argv[I];
    auto ValueOf =
        [&](std::string_view Flag) -> std::optional<std::string_view> {
      if (Arg.rfind(Flag, 0) == 0 && Arg.size() > Flag.size() &&
          Arg[Flag.size()] == '=')
        return Arg.substr(Flag.size() + 1);
      return std::nullopt;
    };
    if (Arg == "-h" || Arg == "--help") {
      usage(stdout);
      return kExitOk;
    } else if (Arg == "--diff") {
      Opts.Diff = true;
    } else if (Arg == "--inverted") {
      Opts.Inverted = true;
    } else if (auto V = ValueOf("--top")) {
      char *End = nullptr;
      std::string Buf(*V);
      Opts.Top = std::strtoull(Buf.c_str(), &End, 10);
      if (!End || *End != '\0' || Buf.empty()) {
        std::fprintf(stderr, "namer-profile: bad --top\n");
        return kExitUsage;
      }
    } else if (auto V = ValueOf("--threshold")) {
      char *End = nullptr;
      std::string Buf(*V);
      double T = std::strtod(Buf.c_str(), &End);
      if (!End || *End != '\0' || Buf.empty() || !std::isfinite(T) || T < 0) {
        std::fprintf(stderr, "namer-profile: bad --threshold\n");
        return kExitUsage;
      }
      Opts.Threshold = T;
    } else if (auto V = ValueOf("--min-samples")) {
      char *End = nullptr;
      std::string Buf(*V);
      Opts.MinSamples = std::strtod(Buf.c_str(), &End);
      if (!End || *End != '\0' || Buf.empty() || Opts.MinSamples < 0 ||
          !std::isfinite(Opts.MinSamples)) {
        std::fprintf(stderr, "namer-profile: bad --min-samples\n");
        return kExitUsage;
      }
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "namer-profile: unknown option '%s'\n",
                   std::string(Arg).c_str());
      usage(stderr);
      return kExitUsage;
    } else {
      Opts.Paths.emplace_back(Arg);
    }
  }
  size_t Want = Opts.Diff ? 2 : 1;
  if (Opts.Paths.size() != Want) {
    usage(stderr);
    return kExitUsage;
  }
  return Opts.Diff ? diff(Opts) : report(Opts);
}
