//===- tools/namer-statdiff.cpp - Stats/BENCH regression diff -------------==//
///
/// \file
/// Compares two stats documents (namer-scan --stats or BENCH_*.json; the
/// canonical {meta, counters, spans} layout, kStatsSchemaVersion) against
/// relative thresholds and exits 5 when the current run regressed. The
/// bench-smoke ctest gate runs it against the committed BENCH_baseline.json
/// so perf/behavior drift fails the suite instead of shipping (DESIGN.md,
/// "Observability": statdiff thresholds).
///
/// Three threshold classes:
///  * counters  -- symmetric relative drift (a counter moving either way
///    means behavior changed: fewer patterns mined is as suspicious as
///    more bytes allocated);
///  * quantiles -- flattened histogram keys (*.p50/.p90/.p99/.p999),
///    increase-only (latency getting faster is not a regression);
///  * spans     -- per-span total_us, increase-only, with an absolute
///    noise floor (--min-span-us) below which timings are jitter.
///
/// Exit codes: 0 no regression, 1 I/O or parse failure, 2 usage error,
/// 5 regression detected (one line per finding on stdout).
///
/// --update-baseline inverts the tool: instead of gating, it rewrites the
/// baseline file from the current document, carrying the --ignore'd
/// counters/spans over from the old baseline (their values are waived by
/// the gate, so refreshing them would only churn the committed file).
/// This replaces the manual copy step of the README refresh workflow.
///
//===----------------------------------------------------------------------===//

#include "support/MiniJson.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namer::json::Value;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitIo = 1;
constexpr int kExitUsage = 2;
constexpr int kExitRegression = 5;

struct Options {
  std::string BasePath;
  std::string CurrentPath;
  double CounterThreshold = 0.25;
  double QuantileThreshold = 0.5;
  double SpanThreshold = 0.5;
  double MinSpanUs = 1000.0;
  std::vector<std::string> IgnorePrefixes;
  bool UpdateBaseline = false;
};

void usage(std::FILE *To) {
  std::fprintf(
      To,
      "usage: namer-statdiff [options] <baseline.json> <current.json>\n"
      "\n"
      "Diffs two stats/BENCH JSON documents ({meta, counters, spans}) and\n"
      "exits 5 when the current run regressed past a threshold.\n"
      "\n"
      "options:\n"
      "  --counter-threshold=F   max symmetric relative counter drift\n"
      "                          (default 0.25)\n"
      "  --quantile-threshold=F  max relative increase of *.p50/.p90/.p99/\n"
      "                          .p999 keys (default 0.5)\n"
      "  --span-threshold=F      max relative increase of a span's total_us\n"
      "                          (default 0.5)\n"
      "  --min-span-us=F         ignore spans whose baseline total_us is\n"
      "                          below this noise floor (default 1000)\n"
      "  --ignore=PREFIX         skip counters/spans with this dotted-name\n"
      "                          prefix (repeatable)\n"
      "  --update-baseline       rewrite <baseline.json> from\n"
      "                          <current.json> instead of gating, keeping\n"
      "                          the --ignore'd series from the old baseline\n"
      "  -h, --help              this text\n"
      "\n"
      "exit codes: 0 ok, 1 io/parse error, 2 usage error, 5 regression\n");
}

bool parseDouble(std::string_view Text, double &Out) {
  std::string Buf(Text);
  char *End = nullptr;
  Out = std::strtod(Buf.c_str(), &End);
  return End && *End == '\0' && !Buf.empty() && std::isfinite(Out);
}

bool ignored(std::string_view Name, const Options &Opts) {
  for (const std::string &Prefix : Opts.IgnorePrefixes)
    if (Name.rfind(Prefix, 0) == 0)
      return true;
  return false;
}

bool isQuantileKey(std::string_view Name) {
  for (const char *Suffix : {".p50", ".p90", ".p99", ".p999"}) {
    std::string_view S(Suffix);
    if (Name.size() > S.size() &&
        Name.substr(Name.size() - S.size()) == S)
      return true;
  }
  return false;
}

std::optional<Value> loadJson(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "namer-statdiff: cannot read %s\n", Path.c_str());
    return std::nullopt;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Error;
  std::optional<Value> Doc = namer::json::parse(Buf.str(), &Error);
  if (!Doc)
    std::fprintf(stderr, "namer-statdiff: %s: %s\n", Path.c_str(),
                 Error.c_str());
  return Doc;
}

/// One comparison: prints and returns true when the relative change from
/// \p Base to \p Cur exceeds \p Threshold. \p IncreaseOnly ignores
/// improvements.
bool checkValue(const char *Kind, const std::string &Name, double Base,
                double Cur, double Threshold, bool IncreaseOnly,
                double FloorForRel) {
  double Delta = Cur - Base;
  if (IncreaseOnly && Delta <= 0)
    return false;
  double Rel = std::fabs(Delta) / std::max(std::fabs(Base), FloorForRel);
  if (Rel <= Threshold)
    return false;
  std::printf("REGRESSION %s %s: %.6g -> %.6g (%+.1f%%, threshold %.0f%%)\n",
              Kind, Name.c_str(), Base, Cur, 100.0 * Delta / std::max(std::fabs(Base), FloorForRel),
              100.0 * Threshold);
  return true;
}

/// Serializes \p V deterministically. Not byte-identical to the hand
/// writers' layout, but structurally equal: objects/arrays of scalars stay
/// on one line, nested containers indent by two spaces, numbers render as
/// integers when integral and with three decimals otherwise (every
/// consumer parses, none compares baseline bytes).
void writeJson(const Value &V, std::string &Out, int Indent) {
  auto WriteString = [&Out](const std::string &S) {
    Out += '"';
    for (char C : S) {
      switch (C) {
      case '"':
        Out += "\\\"";
        break;
      case '\\':
        Out += "\\\\";
        break;
      case '\n':
        Out += "\\n";
        break;
      case '\t':
        Out += "\\t";
        break;
      case '\r':
        Out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          char Buf[8];
          std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
          Out += Buf;
        } else {
          Out += C;
        }
      }
    }
    Out += '"';
  };
  auto IsLeaf = [](const Value &X) {
    return !X.isObject() && !X.isArray();
  };
  switch (V.K) {
  case Value::Kind::Null:
    Out += "null";
    break;
  case Value::Kind::Bool:
    Out += V.B ? "true" : "false";
    break;
  case Value::Kind::Number: {
    char Buf[64];
    double Rounded = std::nearbyint(V.Num);
    if (Rounded == V.Num && std::fabs(V.Num) < 9007199254740992.0)
      std::snprintf(Buf, sizeof(Buf), "%lld",
                    static_cast<long long>(V.Num));
    else
      std::snprintf(Buf, sizeof(Buf), "%.3f", V.Num);
    Out += Buf;
    break;
  }
  case Value::Kind::String:
    WriteString(V.Str);
    break;
  case Value::Kind::Array: {
    bool Flat = true;
    for (const Value &E : V.Arr)
      Flat = Flat && IsLeaf(E);
    Out += '[';
    std::string Pad(static_cast<size_t>(Indent) + 2, ' ');
    for (size_t I = 0; I != V.Arr.size(); ++I) {
      if (Flat) {
        if (I)
          Out += ", ";
      } else {
        Out += I ? ",\n" : "\n";
        Out += Pad;
      }
      writeJson(V.Arr[I], Out, Indent + 2);
    }
    if (!Flat && !V.Arr.empty()) {
      Out += '\n';
      Out += std::string(static_cast<size_t>(Indent), ' ');
    }
    Out += ']';
    break;
  }
  case Value::Kind::Object: {
    bool Flat = true;
    for (const auto &[Key, Member] : V.Obj)
      Flat = Flat && IsLeaf(Member);
    // Big leaf objects (the counters section) stay one-per-line so the
    // committed baseline diffs series by series; the top-level object
    // always indents.
    Flat = Flat && Indent > 0 && V.Obj.size() <= 10;
    Out += '{';
    std::string Pad(static_cast<size_t>(Indent) + 2, ' ');
    for (size_t I = 0; I != V.Obj.size(); ++I) {
      if (Flat) {
        Out += I ? ", " : "";
      } else {
        Out += I ? ",\n" : "\n";
        Out += Pad;
      }
      WriteString(V.Obj[I].first);
      Out += ": ";
      writeJson(V.Obj[I].second, Out, Indent + 2);
    }
    if (!Flat && !V.Obj.empty()) {
      Out += '\n';
      Out += std::string(static_cast<size_t>(Indent), ' ');
    }
    Out += '}';
    break;
  }
  }
}

/// --update-baseline: rewrite the baseline file from the current document,
/// carrying every --ignore'd counter/span over from the old baseline.
int updateBaseline(const Options &Opts) {
  std::optional<Value> Base = loadJson(Opts.BasePath);
  std::optional<Value> Cur = loadJson(Opts.CurrentPath);
  if (!Base || !Cur)
    return kExitIo;
  if (!Cur->find("counters") || !Cur->find("spans")) {
    std::fprintf(stderr,
                 "namer-statdiff: %s is not a stats document (no "
                 "counters/spans objects)\n",
                 Opts.CurrentPath.c_str());
    return kExitIo;
  }

  size_t Kept = 0;
  for (const char *Section : {"counters", "spans"}) {
    const Value *BaseSec = Base->find(Section);
    if (!BaseSec || !BaseSec->isObject())
      continue;
    for (auto &[Name, CurV] : const_cast<Value *>(Cur->find(Section))->Obj) {
      if (!ignored(Name, Opts))
        continue;
      if (const Value *BaseV = BaseSec->find(Name)) {
        CurV = *BaseV;
        ++Kept;
      }
    }
  }

  std::string Out;
  writeJson(*Cur, Out, 0);
  Out += '\n';
  std::ofstream File(Opts.BasePath, std::ios::binary | std::ios::trunc);
  if (!File || !(File << Out).flush()) {
    std::fprintf(stderr, "namer-statdiff: cannot write %s\n",
                 Opts.BasePath.c_str());
    return kExitIo;
  }
  std::printf("namer-statdiff: wrote %s from %s (%zu ignored series kept "
              "from the old baseline)\n",
              Opts.BasePath.c_str(), Opts.CurrentPath.c_str(), Kept);
  return kExitOk;
}

int run(const Options &Opts) {
  std::optional<Value> Base = loadJson(Opts.BasePath);
  std::optional<Value> Cur = loadJson(Opts.CurrentPath);
  if (!Base || !Cur)
    return kExitIo;

  const Value *BaseCounters = Base->find("counters");
  const Value *CurCounters = Cur->find("counters");
  const Value *BaseSpans = Base->find("spans");
  const Value *CurSpans = Cur->find("spans");
  if (!BaseCounters || !BaseCounters->isObject() || !BaseSpans ||
      !BaseSpans->isObject()) {
    std::fprintf(stderr,
                 "namer-statdiff: %s is not a stats document (no "
                 "counters/spans objects)\n",
                 Opts.BasePath.c_str());
    return kExitIo;
  }
  if (!CurCounters || !CurCounters->isObject() || !CurSpans ||
      !CurSpans->isObject()) {
    std::fprintf(stderr,
                 "namer-statdiff: %s is not a stats document (no "
                 "counters/spans objects)\n",
                 Opts.CurrentPath.c_str());
    return kExitIo;
  }

  size_t Regressions = 0;
  size_t Compared = 0;

  // Counters (and the flattened histogram quantile keys living among
  // them). Only the intersection is compared: a counter the other run
  // never registered is a version difference, not a regression.
  for (const auto &[Name, BaseV] : BaseCounters->Obj) {
    if (!BaseV.isNumber() || ignored(Name, Opts))
      continue;
    const Value *CurV = CurCounters->find(Name);
    if (!CurV || !CurV->isNumber())
      continue;
    ++Compared;
    if (isQuantileKey(Name))
      Regressions += checkValue("quantile", Name, BaseV.Num, CurV->Num,
                                Opts.QuantileThreshold,
                                /*IncreaseOnly=*/true, /*FloorForRel=*/1.0);
    else
      Regressions += checkValue("counter", Name, BaseV.Num, CurV->Num,
                                Opts.CounterThreshold,
                                /*IncreaseOnly=*/false, /*FloorForRel=*/1.0);
  }

  // Span totals: {"count": N, "max_us": F, "min_us": F, "total_us": F}.
  for (const auto &[Name, BaseSpan] : BaseSpans->Obj) {
    if (!BaseSpan.isObject() || ignored(Name, Opts))
      continue;
    const Value *CurSpan = CurSpans->find(Name);
    if (!CurSpan || !CurSpan->isObject())
      continue;
    const Value *BaseTotal = BaseSpan.find("total_us");
    const Value *CurTotal = CurSpan->find("total_us");
    if (!BaseTotal || !BaseTotal->isNumber() || !CurTotal ||
        !CurTotal->isNumber())
      continue;
    if (BaseTotal->Num < Opts.MinSpanUs)
      continue; // below the noise floor
    ++Compared;
    Regressions += checkValue("span", Name, BaseTotal->Num, CurTotal->Num,
                              Opts.SpanThreshold, /*IncreaseOnly=*/true,
                              /*FloorForRel=*/Opts.MinSpanUs);
  }

  if (Regressions) {
    std::printf("namer-statdiff: %zu regression(s) across %zu compared "
                "series\n",
                Regressions, Compared);
    return kExitRegression;
  }
  std::printf("namer-statdiff: ok (%zu series compared, 0 regressions)\n",
              Compared);
  return kExitOk;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  std::vector<std::string> Positional;
  for (int I = 1; I != Argc; ++I) {
    std::string_view Arg = Argv[I];
    auto ValueOf = [&](std::string_view Flag) -> std::optional<std::string_view> {
      if (Arg.rfind(Flag, 0) == 0 && Arg.size() > Flag.size() &&
          Arg[Flag.size()] == '=')
        return Arg.substr(Flag.size() + 1);
      return std::nullopt;
    };
    if (Arg == "-h" || Arg == "--help") {
      usage(stdout);
      return kExitOk;
    } else if (auto V = ValueOf("--counter-threshold")) {
      if (!parseDouble(*V, Opts.CounterThreshold) ||
          Opts.CounterThreshold < 0) {
        std::fprintf(stderr, "namer-statdiff: bad --counter-threshold\n");
        return kExitUsage;
      }
    } else if (auto V = ValueOf("--quantile-threshold")) {
      if (!parseDouble(*V, Opts.QuantileThreshold) ||
          Opts.QuantileThreshold < 0) {
        std::fprintf(stderr, "namer-statdiff: bad --quantile-threshold\n");
        return kExitUsage;
      }
    } else if (auto V = ValueOf("--span-threshold")) {
      if (!parseDouble(*V, Opts.SpanThreshold) || Opts.SpanThreshold < 0) {
        std::fprintf(stderr, "namer-statdiff: bad --span-threshold\n");
        return kExitUsage;
      }
    } else if (auto V = ValueOf("--min-span-us")) {
      if (!parseDouble(*V, Opts.MinSpanUs) || Opts.MinSpanUs < 0) {
        std::fprintf(stderr, "namer-statdiff: bad --min-span-us\n");
        return kExitUsage;
      }
    } else if (auto V = ValueOf("--ignore")) {
      Opts.IgnorePrefixes.emplace_back(*V);
    } else if (Arg == "--update-baseline") {
      Opts.UpdateBaseline = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "namer-statdiff: unknown option '%s'\n",
                   std::string(Arg).c_str());
      usage(stderr);
      return kExitUsage;
    } else {
      Positional.emplace_back(Arg);
    }
  }
  if (Positional.size() != 2) {
    usage(stderr);
    return kExitUsage;
  }
  Opts.BasePath = Positional[0];
  Opts.CurrentPath = Positional[1];
  return Opts.UpdateBaseline ? updateBaseline(Opts) : run(Opts);
}
